//! Telemetry profile viewer: render a `qdc-telemetry/v1` archive as a
//! per-round utilisation table plus the top-k hottest edges.
//!
//! ```text
//! profile <telemetry.jsonl> [--top K]
//! profile - [--top K]            # read the archive from stdin
//! ```
//!
//! * `<telemetry.jsonl>` — a profile archived by
//!   `campaign --telemetry-dir` (or any [`TelemetryReport::to_jsonl`]
//!   output); `-` reads the same bytes from stdin, so service
//!   endpoints pipe straight in:
//!   `curl -sN host/jobs/1/telemetry/0 | profile -`;
//! * `--top K` — how many hottest edges to list (default 5).
//!
//! The utilisation columns bucket each delivered message against the
//! per-edge budget `B`: `idle` counts directed edge slots that carried
//! nothing, and `<=B/4 … <=B` count messages by how much of the budget
//! they used. For classified profiles (simulation-theorem networks) the
//! path/highway/cross split of each round's bits is shown as well.
//!
//! Exit codes: `0` success, `2` usage, `4` the archive cannot be read,
//! `5` the archive is empty, truncated, or otherwise malformed (the
//! parser reports a structured error — it never panics on bad input).

use qdc_bench::{print_header, print_row};
use qdc_congest::TelemetryReport;

fn usage() -> ! {
    eprintln!("usage: profile <telemetry.jsonl> [--top K]");
    std::process::exit(2);
}

fn parse_args() -> (String, usize) {
    let mut path = String::new();
    let mut top = 5usize;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--top" => match it.next().and_then(|v| v.parse().ok()) {
                Some(k) => top = k,
                None => usage(),
            },
            "--help" | "-h" => usage(),
            // A bare `-` is the stdin pseudo-path, not a flag.
            "-" if path.is_empty() => path = "-".to_string(),
            s if s.starts_with('-') => {
                eprintln!("unknown flag `{s}`");
                usage();
            }
            s if path.is_empty() => path = s.to_string(),
            _ => usage(),
        }
    }
    if path.is_empty() {
        usage();
    }
    (path, top)
}

fn main() {
    let (path, top) = parse_args();
    let text = if path == "-" {
        use std::io::Read as _;
        let mut buf = String::new();
        match std::io::stdin().read_to_string(&mut buf) {
            Ok(_) => buf,
            Err(e) => {
                eprintln!("profile: cannot read stdin: {e}");
                std::process::exit(4);
            }
        }
    } else {
        match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("profile: cannot read `{path}`: {e}");
                std::process::exit(4);
            }
        }
    };
    let report = match TelemetryReport::from_jsonl(&text) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("profile: `{path}` is not a valid telemetry archive: {e}");
            std::process::exit(5);
        }
    };

    println!(
        "profile `{path}`: {} nodes, {} edges, B = {} bits, {} round(s){}",
        report.nodes,
        report.edges,
        report.bandwidth,
        report.rounds.len(),
        if report.classified {
            ", highway/path classified"
        } else {
            ""
        }
    );

    let base: &[&str] = &[
        "round", "msgs", "bits", "idle", "<=B/4", "<=B/2", "<=3B/4", "<=B",
    ];
    let split: &[&str] = &["path", "hwy", "cross"];
    let faults: &[&str] = &["drop", "corr", "crash"];
    let any_faults = report
        .rounds
        .iter()
        .any(|r| r.dropped + r.corrupted_bits + r.crashes > 0);
    let mut cols: Vec<&str> = base.to_vec();
    if report.classified {
        cols.extend_from_slice(split);
    }
    if any_faults {
        cols.extend_from_slice(faults);
    }
    let widths: Vec<usize> = cols.iter().map(|c| c.len().max(7)).collect();
    print_header(&cols, &widths);
    for r in &report.rounds {
        let mut row: Vec<String> = vec![
            r.round.to_string(),
            r.messages.to_string(),
            r.bits.to_string(),
        ];
        row.extend(r.util.iter().map(u64::to_string));
        if report.classified {
            row.extend([
                r.path_bits.to_string(),
                r.highway_bits.to_string(),
                r.cross_bits.to_string(),
            ]);
        }
        if any_faults {
            row.extend([
                r.dropped.to_string(),
                r.corrupted_bits.to_string(),
                r.crashes.to_string(),
            ]);
        }
        let refs: Vec<&str> = row.iter().map(String::as_str).collect();
        print_row(&refs, &widths);
    }

    println!();
    println!("top {top} hottest edges (by delivered bits):");
    let widths = [8, 10, 12, 10, 12];
    print_header(&["edge", "msgs", "bits", "dropped", "corrupted"], &widths);
    for (edge, totals) in report.hottest_edges(top) {
        print_row(
            &[
                &edge.to_string(),
                &totals.messages.to_string(),
                &totals.bits.to_string(),
                &totals.dropped.to_string(),
                &totals.corrupted_bits.to_string(),
            ],
            &widths,
        );
    }
    println!(
        "totals: {} messages, {} bits, {} dropped, {} bits corrupted",
        report.total_messages(),
        report.total_bits(),
        report.total_dropped(),
        report.total_corrupted_bits()
    );
}
