//! Long-horizon telemetry soak: drive a never-quiescing gossip for a
//! chosen number of rounds and measure what the telemetry sink costs.
//!
//! ```text
//! stream_soak [--rounds N] [--nodes N] [--seed S] [--sink stream|exact|null]
//!             [--out PATH] [--top-k K]
//! ```
//!
//! Every node broadcasts a fresh 16-bit word each round and never
//! terminates, so the run length is exactly `--rounds` (default 1000)
//! — the workload that separates an O(1)-memory sink from an O(rounds)
//! one. Three sinks:
//!
//! * `stream` (default) — [`StreamSink`] writing a
//!   `qdc-telemetry-stream/v1` archive to `--out` incrementally; peak
//!   memory is independent of `--rounds`;
//! * `exact` — [`RoundProfiler`], the buffered reference: the whole
//!   per-round series is held in memory and serialized to `--out` at
//!   the end;
//! * `null` — [`NullTelemetry`], the zero-cost baseline.
//!
//! The `totals:` line is printed identically for every sink, so two
//! runs can be diffed to prove the streaming counters match the exact
//! ones; `peak_rss_kb` (Linux `VmHWM`, 0 elsewhere) is the measured
//! high-water mark the EXPERIMENTS §STREAM table records. CI's
//! telemetry-stream job runs the `stream` sink under a `ulimit -v`
//! address-space ceiling that the buffered profiler's archive alone
//! would overrun.
//!
//! Exit codes: `0` success, `2` usage, `4` I/O failure.

use qdc_congest::{
    CongestConfig, Inbox, Message, NodeAlgorithm, NodeInfo, NullTelemetry, Outbox, RoundProfiler,
    Stepper, StreamSink, Telemetry,
};
use qdc_graph::generate;
use std::io::Write as _;

/// Gossip that never terminates: a fresh 16-bit broadcast every round.
struct Chatter {
    id: u64,
    beat: u64,
}

impl NodeAlgorithm for Chatter {
    fn on_start(&mut self, _: &NodeInfo, out: &mut Outbox) {
        out.broadcast(Message::from_uint(self.id & 0xffff, 16));
    }
    fn on_round(&mut self, _: &NodeInfo, _: &Inbox, out: &mut Outbox) {
        self.beat += 1;
        out.broadcast(Message::from_uint((self.id + self.beat) & 0xffff, 16));
    }
    fn is_terminated(&self) -> bool {
        false
    }
}

struct Args {
    rounds: usize,
    nodes: usize,
    seed: u64,
    sink: String,
    out: Option<String>,
    top_k: usize,
}

fn usage() -> ! {
    eprintln!(
        "usage: stream_soak [--rounds N] [--nodes N] [--seed S] \
         [--sink stream|exact|null] [--out PATH] [--top-k K]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        rounds: 1000,
        nodes: 32,
        seed: 7,
        sink: "stream".to_string(),
        out: None,
        top_k: 16,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--rounds" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => args.rounds = n,
                _ => usage(),
            },
            "--nodes" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 2 => args.nodes = n,
                _ => usage(),
            },
            "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(s) => args.seed = s,
                None => usage(),
            },
            "--sink" => match it.next() {
                Some(s) if ["stream", "exact", "null"].contains(&s.as_str()) => args.sink = s,
                _ => usage(),
            },
            "--out" => match it.next() {
                Some(v) => args.out = Some(v),
                None => usage(),
            },
            "--top-k" => match it.next().and_then(|v| v.parse().ok()) {
                Some(k) if k > 0 => args.top_k = k,
                _ => usage(),
            },
            _ => usage(),
        }
    }
    args
}

fn drive<T: Telemetry>(stepper: &mut Stepper<'_, Chatter>, sink: &mut T, rounds: usize) {
    for _ in 0..rounds {
        stepper.step_observed(sink);
    }
}

/// Peak resident set in KiB (Linux `VmHWM`); 0 where unavailable.
fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(0)
}

fn die_io(e: &dyn std::fmt::Display) -> ! {
    eprintln!("stream_soak: {e}");
    std::process::exit(4);
}

fn main() {
    let args = parse_args();
    const B: usize = 16;
    let g = generate::random_connected(args.nodes, args.nodes / 4, args.seed);
    let make = |info: &NodeInfo| Chatter {
        id: info.id.0 as u64,
        beat: 0,
    };
    let mut stepper = Stepper::new(&g, CongestConfig::classical(B), make);

    println!(
        "stream_soak: nodes={} edges={} B={B} rounds={} sink={}",
        g.node_count(),
        g.edge_count(),
        args.rounds,
        args.sink
    );

    // (rounds, messages, bits, dropped) from the sink's own accounting —
    // printed identically for every sink so runs can be diffed.
    let (rounds, messages, bits, dropped) = match args.sink.as_str() {
        "stream" => {
            let path = args.out.as_deref().unwrap_or("soak.telemetry.jsonl");
            let file = std::fs::File::create(path).unwrap_or_else(|e| die_io(&e));
            let mut sink = StreamSink::new(file, g.node_count(), g.edge_count(), B, args.top_k);
            drive(&mut stepper, &mut sink, args.rounds);
            let agg = sink.finish().unwrap_or_else(|e| die_io(&e));
            let size = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
            println!("archive: {path} ({size} bytes)");
            (
                agg.totals.rounds,
                agg.totals.messages,
                agg.totals.bits,
                agg.totals.dropped,
            )
        }
        "exact" => {
            let mut sink = RoundProfiler::new(g.node_count(), g.edge_count(), B);
            drive(&mut stepper, &mut sink, args.rounds);
            let profile = sink.finish();
            if let Some(path) = &args.out {
                let mut file = std::fs::File::create(path).unwrap_or_else(|e| die_io(&e));
                file.write_all(profile.to_jsonl(false).as_bytes())
                    .unwrap_or_else(|e| die_io(&e));
                let size = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
                println!("archive: {path} ({size} bytes)");
            }
            (
                profile.rounds.len() as u64,
                profile.total_messages(),
                profile.total_bits(),
                profile.total_dropped(),
            )
        }
        _ => {
            let mut sink = NullTelemetry;
            drive(&mut stepper, &mut sink, args.rounds);
            let report = stepper.report();
            (
                report.rounds as u64,
                report.messages_sent,
                report.bits_sent,
                0,
            )
        }
    };

    println!("totals: rounds={rounds} messages={messages} bits={bits} dropped={dropped}");
    println!("peak_rss_kb={}", peak_rss_kb());
}
