//! Figure 1: the full proof pipeline, executed end to end.
//!
//! Regenerates the three-column structure of Figure 1 — nonlocal games →
//! Server model → distributed networks — by validating one concrete
//! instance of every arrow and printing the artifact each step produced.

use qdc_bench::fmt_f;
use qdc_core::pipeline::{run_pipeline, PipelineConfig};

fn main() {
    let cfg = PipelineConfig::default();
    println!("=== Figure 1: proof-structure pipeline (one executable instance) ===\n");
    println!(
        "instance: n = {} input bits, network Γ = {}, L = {}, B = {}, seed = {}\n",
        cfg.input_bits, cfg.gamma, cfg.l, cfg.bandwidth, cfg.seed
    );
    let r = run_pipeline(&cfg);

    println!(
        "[games]   CHSH classical bias        = {}",
        fmt_f(r.chsh_classical_bias)
    );
    println!(
        "[games]   CHSH entangled bias        = {} (Tsirelson √2/2 = {})",
        fmt_f(r.chsh_quantum_bias),
        fmt_f(std::f64::consts::FRAC_1_SQRT_2)
    );
    println!(
        "[Lem 3.2] abort-game survival        = {} (predicted 4^-2c = {}), correct|survive = {}",
        fmt_f(r.abort.survival_rate),
        fmt_f(r.abort.predicted_survival),
        fmt_f(r.abort.correct_given_survival)
    );
    println!(
        "[Thm 6.1] IPmod3 server bound        = {} qubits (Ω(n) at n = {})",
        fmt_f(r.ipmod3_server_bound),
        64
    );
    println!(
        "[Thm 6.1] Gap-Eq fooling set         = 2^{} pairs (Ω(n)-bit certificate)",
        fmt_f(r.gapeq_fooling_log2)
    );
    println!(
        "[Thm 3.4] IPmod3 → Ham gadget chain  = {}",
        if r.gadget_ok {
            "validated (Lemma C.3 holds, matchings perfect)"
        } else {
            "FAILED"
        }
    );
    println!(
        "[Thm 3.5] network N                  = {} nodes, diameter {} (Θ(log L)), horizon {}",
        r.network_nodes, r.network_diameter, r.audit.horizon
    );
    println!(
        "[Thm 3.5] audit: paid {} bits total, max {}/round vs 6kB budget {} → {}",
        r.audit.total_paid(),
        r.audit.max_paid_per_round,
        r.audit.per_round_budget,
        if r.audit.within_budget {
            "WITHIN BUDGET"
        } else {
            "EXCEEDED"
        }
    );
    println!(
        "[Thm 3.6] distributed decision ok    = {}, round lower bound at this n: Ω({}) rounds",
        r.distributed_decision_ok,
        fmt_f(r.verification_bound_rounds)
    );
    println!("\nAll arrows of Figure 1 exercised on a single deterministic instance.");
}
