//! Section 5 (conclusion): the open problems, from the upper-bound side.
//!
//! The paper closes with problems its technique does not yet reach
//! quantumly: diameter/APSP lower bounds (\[FHW12, HW12\]), random walks
//! (\[NDP11\]), and whether the Server model is strictly stronger than
//! two-party quantum communication. This harness demonstrates the
//! classical state of the first family — APSP/diameter costs Θ(n) rounds
//! even on constant-diameter networks — and prints where the quantum
//! question stands.

use qdc_algos::apsp::distributed_apsp;
use qdc_bench::{print_header, print_row};
use qdc_congest::{topology, CongestConfig};
use qdc_graph::algorithms;
use qdc_simthm::SimulationNetwork;

fn main() {
    let cfg = CongestConfig::classical(32);
    println!("=== Open problem (conclusion): diameter & APSP, the classical upper bound ===\n");
    println!("[HW12]: APSP in O(n) rounds; [FHW12]: Ω̃(n) rounds even at diameter 2 —");
    println!("does either bound survive quantum communication? Open. Here is the");
    println!("congestion phenomenon the question is about:\n");

    let widths = [24, 8, 8, 12, 14];
    print_header(
        &["network", "n", "diam", "APSP rounds", "rounds / n"],
        &widths,
    );
    let hard = SimulationNetwork::build(8, 17);
    let nets: Vec<(&str, qdc_graph::Graph)> = vec![
        ("ring", topology::ring(32)),
        ("hypercube(5)", topology::hypercube(5)),
        ("complete bipartite 8×8", topology::complete_bipartite(8, 8)),
        ("grid 6×6", topology::grid(6, 6)),
        ("simthm N(8,17)", hard.graph().clone()),
    ];
    for (name, g) in &nets {
        let run = distributed_apsp(g, cfg);
        let diam = algorithms::diameter(g).unwrap();
        assert_eq!(
            run.diameter, diam,
            "{name}: distributed diameter must be exact"
        );
        let n = g.node_count();
        print_row(
            &[
                name,
                &n.to_string(),
                &diam.to_string(),
                &run.ledger.rounds.to_string(),
                &format!("{:.2}", run.ledger.rounds as f64 / n as f64),
            ],
            &widths,
        );
    }
    println!("\nNote the bipartite row: diameter 2, yet APSP rounds ~ n — the congestion");
    println!("that [FHW12] turns into a classical Ω̃(n) bound via Set Disjointness.");
    println!("Quantumly that route FAILS (Example 1.1: Disj is easy); extending this");
    println!("paper's Server-model route to diameter needs new reductions from IPmod3 —");
    println!("open, along with bounded-round Server-model bounds for random walks, and");
    println!("whether Q*,sv = Q*,cc at all (the Server model's own status).");
}
