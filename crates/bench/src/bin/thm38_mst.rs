//! Theorem 3.8: the α-approximate MST lower bound and the §9.2 reduction.
//!
//! Prints the parameter composition across `(W, α)`, then executes the
//! §9.2 decision procedure end to end: assign weight 1 to `M`-edges and
//! `W` to the rest, run an α-approximate distributed MST, accept iff the
//! tree weighs at most `α(n−1)` — distinguishing connected `M` from
//! δ-far `M` with zero error on the far side, exactly as the proof
//! demands (0-error on 1-inputs is what the gap reduction needs).

use qdc_algos::mst::mst_approx_sweep;
use qdc_bench::{fmt_f, print_header, print_row};
use qdc_congest::CongestConfig;
use qdc_core::{bounds, theorems};
use qdc_graph::generate;
use qdc_simthm::SimulationNetwork;

fn main() {
    let bandwidth = 48;
    let n_theory = 1usize << 14;

    println!("=== §9.2 parameters across the (W, α) plane at n = {n_theory} ===\n");
    let widths = [10, 6, 8, 10, 12, 12];
    print_header(&["W", "α", "L", "Γ", "Γ·L / n", "Ω-bound"], &widths);
    for &(w, alpha) in &[
        (64f64, 2f64),
        (512.0, 2.0),
        (4096.0, 2.0),
        (4096.0, 8.0),
        (1e9, 2.0),
    ] {
        let p = theorems::theorem38_params(n_theory, bandwidth, w, alpha);
        print_row(
            &[
                &fmt_f(w),
                &fmt_f(alpha),
                &p.l.to_string(),
                &p.gamma.to_string(),
                &fmt_f(p.node_scale() as f64 / n_theory as f64),
                &fmt_f(bounds::optimization_lower_bound(
                    n_theory, bandwidth, w, alpha,
                )),
            ],
            &widths,
        );
    }

    println!("\n=== §9.2 decision procedure, executed (α-approx MST ⇒ Gap-Ham decision) ===\n");
    let mut net = SimulationNetwork::build(13, 17);
    if net.track_count() % 2 == 1 {
        net = SimulationNetwork::build(14, 17);
    }
    let tracks = net.track_count();
    let n = net.graph().node_count();
    let alpha = 2.0;
    let w = (alpha as u64) * (n as u64) * 2; // W > αn: the separating regime
    println!(
        "network: {} nodes, tracks = {tracks}, α = {alpha}, W = {w}\n",
        n
    );

    let widths = [10, 14, 16, 14, 12];
    print_header(
        &[
            "Δ planted",
            "cycles in M",
            "approx MST wt",
            "α(n−1) thr",
            "accept",
        ],
        &widths,
    );
    let (carol, base_david) = generate::hamiltonian_matching_pair(tracks);
    for &delta in &[0usize, 1, 2, 4] {
        // Plant δ "breaks": rotate δ pairs of David's matching so G splits
        // into more cycles.
        let mut david = base_david.clone();
        for j in 0..delta {
            let a = 2 * j;
            let b = 2 * j + 1;
            if b < david.len() {
                let (x1, y1) = david[a];
                let (x2, y2) = david[b];
                david[a] = (x1, y2);
                david[b] = (x2, y1);
            }
        }
        let m = net.embed_matchings(&carol, &david);
        let cycles = qdc_graph::predicates::cycle_count_two_regular(net.graph(), &m).unwrap();
        let weights = theorems::weight_gadget(net.graph(), &m, w);
        let run = mst_approx_sweep(
            net.graph(),
            CongestConfig::classical(bandwidth),
            &weights,
            alpha,
        );
        let accept = theorems::decide_connected_from_mst(run.total_weight, n, alpha);
        // Soundness: accept iff M is (spanning-)connected.
        let truly_connected =
            qdc_graph::predicates::is_spanning_connected_subgraph(net.graph(), &m);
        assert_eq!(accept, truly_connected, "§9.2 decision soundness");
        print_row(
            &[
                &delta.to_string(),
                &cycles.to_string(),
                &run.total_weight.to_string(),
                &fmt_f(alpha * (n as f64 - 1.0)),
                &accept.to_string(),
            ],
            &widths,
        );
    }
    println!("\nConnected M ⇒ MST = n−1 ≤ α(n−1); each extra cycle forces a weight-W edge,");
    println!("blowing the budget — so an α-approximate MST solves Gap-Ham, and the Gap-Ham");
    println!("hardness (Theorems 3.4 + 3.5) transfers: Ω(min(W/α, √n)/√(B log n)) rounds.");
}
