//! Corollary 3.9: the optimization-problem roster.
//!
//! The corollary transfers the Theorem 3.8 bound to MST, shallow-light
//! tree, s-source distance, shortest-path tree, minimum routing cost
//! spanning tree, minimum (s-t) cut, shortest s-t path and generalized
//! Steiner forest. This harness solves each on a hard-network instance —
//! distributed where we have a distributed algorithm, sequential
//! reference otherwise — and reports solution quality against the known
//! guarantees.

use qdc_algos::mst::{mst_approx_sweep, mst_exact};
use qdc_algos::sssp::distributed_sssp;
use qdc_bench::{fmt_f, print_header, print_row};
use qdc_congest::CongestConfig;
use qdc_core::bounds;
use qdc_graph::optimization::{
    best_spt_routing_tree, min_st_cut, routing_cost_lower_bound, shallow_light_tree,
    steiner_feasible, steiner_forest,
};
use qdc_graph::{algorithms, generate, NodeId};
use qdc_simthm::SimulationNetwork;

fn main() {
    let bandwidth = 64;
    let mut net = SimulationNetwork::build(11, 17);
    if net.track_count() % 2 == 1 {
        net = SimulationNetwork::build(12, 17);
    }
    let g = net.graph().clone();
    let n = g.node_count();
    let weights = generate::random_weights(&g, 32, 5);
    let w_ratio = weights.aspect_ratio();
    let cfg = CongestConfig::classical(bandwidth);
    let s = NodeId(0);
    let t = NodeId((n - 1) as u32);

    println!("=== Corollary 3.9: optimization suite on N, n = {n}, W = {w_ratio} ===\n");
    println!(
        "Theorem 3.8 bound at (W = {w_ratio}, α = 1): Ω({}) rounds; at α = 2: Ω({})\n",
        fmt_f(bounds::optimization_lower_bound(n, bandwidth, w_ratio, 1.0)),
        fmt_f(bounds::optimization_lower_bound(n, bandwidth, w_ratio, 2.0)),
    );

    let widths = [34, 14, 14, 24];
    print_header(&["problem", "value", "rounds", "quality check"], &widths);

    // MST (distributed, exact + 2-approx).
    let exact = mst_exact(&g, cfg, &weights);
    let kruskal = algorithms::kruskal_mst(&g, &weights);
    print_row(
        &[
            "minimum spanning tree (exact)",
            &exact.total_weight.to_string(),
            &exact.ledger.rounds.to_string(),
            &format!("= Kruskal: {}", exact.total_weight == kruskal.total_weight),
        ],
        &widths,
    );
    let approx = mst_approx_sweep(&g, cfg, &weights, 2.0);
    print_row(
        &[
            "minimum spanning tree (2-approx)",
            &approx.total_weight.to_string(),
            &approx.ledger.rounds.to_string(),
            &format!(
                "ratio {:.3} ≤ 2",
                approx.total_weight as f64 / kruskal.total_weight as f64
            ),
        ],
        &widths,
    );

    // s-source distance / shortest path tree / shortest s-t path
    // (distributed Bellman–Ford).
    let sssp = distributed_sssp(&g, cfg, &weights, s);
    let dij = algorithms::dijkstra(&g, &weights, s);
    print_row(
        &[
            "s-source distance",
            &fmt_f(sssp.dist.iter().map(|&d| d as f64).sum::<f64>()),
            &sssp.ledger.rounds.to_string(),
            &format!("= Dijkstra: {}", sssp.dist == dij),
        ],
        &widths,
    );
    let spt_edges = sssp
        .parent_port
        .iter()
        .enumerate()
        .filter(|(_, p)| p.is_some())
        .count();
    print_row(
        &[
            "shortest path tree",
            &spt_edges.to_string(),
            &sssp.ledger.rounds.to_string(),
            &format!("spans n−1 = {}: {}", n - 1, spt_edges == n - 1),
        ],
        &widths,
    );
    print_row(
        &[
            "shortest s-t path",
            &sssp.dist[t.index()].to_string(),
            &sssp.ledger.rounds.to_string(),
            &format!("= Dijkstra: {}", sssp.dist[t.index()] == dij[t.index()]),
        ],
        &widths,
    );

    // Minimum cut (sequential Stoer–Wagner reference).
    let global_cut = algorithms::stoer_wagner_min_cut(&g, &weights).unwrap();
    print_row(
        &[
            "minimum cut (Stoer–Wagner ref)",
            &global_cut.to_string(),
            "-",
            "global ≤ every s-t cut",
        ],
        &widths,
    );

    // Minimum s-t cut (Edmonds–Karp reference).
    let st = min_st_cut(&g, &weights, s, t);
    print_row(
        &[
            "minimum s-t cut (max-flow ref)",
            &st.value.to_string(),
            "-",
            &format!("≥ global: {}", st.value >= global_cut),
        ],
        &widths,
    );

    // Minimum routing cost spanning tree (best-SPT 2-approx).
    let (_tree, cost) = best_spt_routing_tree(&g, &weights);
    let lb = routing_cost_lower_bound(&g, &weights);
    print_row(
        &[
            "min routing cost ST (2-approx)",
            &cost.to_string(),
            "-",
            &format!("≤ 2·metric LB {}: {}", lb, cost <= 2 * lb),
        ],
        &widths,
    );

    // Shallow-light tree (LAST, α = 2).
    let slt = shallow_light_tree(&g, &weights, s, 2.0);
    let light_ok = slt.weight as f64 <= 3.0 * kruskal.total_weight as f64;
    let shallow_ok = g
        .nodes()
        .all(|v| slt.root_distances[v.index()] as f64 <= 2.0 * dij[v.index()] as f64 + 1e-9);
    assert!(light_ok && shallow_ok, "shallow-light guarantees must hold");
    print_row(
        &[
            "shallow-light tree (α = 2)",
            &slt.weight.to_string(),
            "-",
            &format!("radius ≤ 2·SPT: {shallow_ok}, weight ≤ 3·MST: {light_ok}"),
        ],
        &widths,
    );

    // Generalized Steiner forest.
    let groups = vec![
        vec![
            NodeId(0),
            NodeId((n / 3) as u32),
            NodeId((2 * n / 3) as u32),
        ],
        vec![NodeId(1), NodeId((n / 2) as u32)],
    ];
    let (forest, sf_weight) = steiner_forest(&g, &weights, &groups);
    print_row(
        &[
            "generalized Steiner forest",
            &sf_weight.to_string(),
            "-",
            &format!("feasible: {}", steiner_feasible(&g, &forest, &groups)),
        ],
        &widths,
    );

    println!("\nEvery problem above inherits the Ω(min(W/α, √n)/√(B log n)) quantum round");
    println!("bound via Corollary 3.9; the classical solutions shown are within their known");
    println!("approximation guarantees, so quantumness cannot help by more than polylogs.");
}
