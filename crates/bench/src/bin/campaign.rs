//! Campaign runner CLI: execute a named experiment campaign on a worker
//! pool and write machine-readable results.
//!
//! ```text
//! campaign <spec> [--threads N] [--sim-threads N] [--deterministic]
//!                 [--out FILE.jsonl] [--summary FILE.json]
//!                 [--trace-dir DIR] [--telemetry-dir DIR] [--list]
//! ```
//!
//! * `<spec>` — a built-in campaign name (`campaign --list` prints them);
//! * `--threads N` — worker pool size (default 1). The deterministic
//!   output is byte-identical for every `N`;
//! * `--sim-threads N` — worker threads for each point's round engine
//!   (the simulator's sharded compute phase; default 1). Also covered by
//!   the byte-identical contract;
//! * `--deterministic` — omit the volatile wall-clock fields from the
//!   record and telemetry files, so two runs of the same spec can be
//!   diffed byte-for-byte (CI's parallel-differential job does exactly
//!   this). The summary keeps its `threads`/`wall_ms` fields — its
//!   schema pins them — so only records and archives are diffable;
//! * `--out` — per-point JSONL records (default `campaign_<spec>.jsonl`);
//! * `--summary` — aggregate summary (default `BENCH_<spec>.json`);
//! * `--trace-dir` — also archive each traced point's per-round traffic
//!   as `<dir>/point_<i>.trace.jsonl`;
//! * `--telemetry-dir` — profile each point with a telemetry sink
//!   (observation never changes results) and archive each profile as
//!   `<dir>/point_<i>.telemetry.jsonl` (the `profile` binary renders
//!   these).
//!
//! After writing, the binary re-reads the JSONL file and runs the strict
//! conformance validator over every record line (and the summary), so a
//! zero exit status certifies the output is schema-conformant (CI's
//! smoke jobs rely on this).

use qdc_bench::{print_header, print_row};
use qdc_harness::{
    builtin, builtin_names, run_campaign, summary_json, validate_output_paths, CampaignError,
    CampaignOutcome, RunOptions,
};

struct Args {
    spec: String,
    threads: usize,
    sim_threads: usize,
    deterministic: bool,
    out: Option<String>,
    summary: Option<String>,
    trace_dir: Option<String>,
    telemetry_dir: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: campaign <spec> [--threads N] [--sim-threads N] [--deterministic] \
         [--out FILE.jsonl] [--summary FILE.json] [--trace-dir DIR] \
         [--telemetry-dir DIR] [--list]"
    );
    eprintln!("built-in specs: {}", builtin_names().join(", "));
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        spec: String::new(),
        threads: 1,
        sim_threads: 1,
        deterministic: false,
        out: None,
        summary: None,
        trace_dir: None,
        telemetry_dir: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--list" => {
                for name in builtin_names() {
                    let spec = builtin(name).expect("listed builtins exist");
                    println!("{name}  ({} points)", spec.points().len());
                }
                std::process::exit(0);
            }
            "--threads" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => args.threads = n,
                None => usage(),
            },
            "--sim-threads" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => args.sim_threads = n,
                None => usage(),
            },
            "--deterministic" => args.deterministic = true,
            "--out" => match it.next() {
                Some(v) => args.out = Some(v),
                None => usage(),
            },
            "--summary" => match it.next() {
                Some(v) => args.summary = Some(v),
                None => usage(),
            },
            "--trace-dir" => match it.next() {
                Some(v) => args.trace_dir = Some(v),
                None => usage(),
            },
            "--telemetry-dir" => match it.next() {
                Some(v) => args.telemetry_dir = Some(v),
                None => usage(),
            },
            "--help" | "-h" => usage(),
            s if s.starts_with('-') => {
                eprintln!("unknown flag `{s}`");
                usage();
            }
            s if args.spec.is_empty() => args.spec = s.to_string(),
            _ => usage(),
        }
    }
    if args.spec.is_empty() {
        usage();
    }
    args
}

fn fail(err: &CampaignError) -> ! {
    eprintln!("campaign: {err}");
    std::process::exit(2);
}

fn write_outputs(
    args: &Args,
    outcome: &CampaignOutcome,
    out_path: &str,
    summary_path: &str,
) -> std::io::Result<usize> {
    let mut jsonl = String::new();
    for rec in &outcome.records {
        jsonl.push_str(&qdc_harness::record_json(
            &outcome.spec_name,
            rec,
            !args.deterministic,
        ));
        jsonl.push('\n');
    }
    std::fs::write(out_path, &jsonl)?;
    std::fs::write(summary_path, summary_json(outcome) + "\n")?;

    if let Some(dir) = &args.trace_dir {
        std::fs::create_dir_all(dir)?;
        for (i, trace) in outcome.traces.iter().enumerate() {
            if let Some(trace) = trace {
                std::fs::write(format!("{dir}/point_{i}.trace.jsonl"), trace.to_jsonl())?;
            }
        }
    }

    if let Some(dir) = &args.telemetry_dir {
        std::fs::create_dir_all(dir)?;
        for (i, profile) in outcome.telemetry.iter().enumerate() {
            if let Some(profile) = profile {
                std::fs::write(
                    format!("{dir}/point_{i}.telemetry.jsonl"),
                    profile.to_jsonl(!args.deterministic),
                )?;
            }
        }
    }

    // Self-check: every line we wrote must pass the strict conformance
    // validator, not merely parse as JSON.
    let written = std::fs::read_to_string(out_path)?;
    let mut n = 0;
    for (lineno, line) in written.lines().enumerate() {
        if let Err(e) = qdc_harness::validate_record_line(line) {
            eprintln!("campaign: self-check failed at line {}: {e}", lineno + 1);
            std::process::exit(1);
        }
        n += 1;
    }
    if let Err(e) = qdc_harness::validate_summary(&std::fs::read_to_string(summary_path)?) {
        eprintln!("campaign: summary self-check failed: {e}");
        std::process::exit(1);
    }
    Ok(n)
}

fn main() {
    let args = parse_args();
    let spec = match builtin(&args.spec) {
        Some(s) => s,
        None => {
            eprintln!("campaign: unknown spec `{}`", args.spec);
            eprintln!("built-in specs: {}", builtin_names().join(", "));
            std::process::exit(2);
        }
    };
    let out_path = args
        .out
        .clone()
        .unwrap_or_else(|| format!("campaign_{}.jsonl", spec.name));
    let summary_path = args
        .summary
        .clone()
        .unwrap_or_else(|| format!("BENCH_{}.json", spec.name));
    if let Err(e) = validate_output_paths(&out_path, &summary_path) {
        fail(&e);
    }

    let options = RunOptions {
        threads: args.threads,
        keep_traces: args.trace_dir.is_some(),
        keep_telemetry: args.telemetry_dir.is_some(),
        sim_threads: args.sim_threads,
    };
    let outcome = match run_campaign(&spec, &options) {
        Ok(o) => o,
        Err(e) => fail(&e),
    };

    let validated = match write_outputs(&args, &outcome, &out_path, &summary_path) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("campaign: writing outputs failed: {e}");
            std::process::exit(1);
        }
    };

    let agg = &outcome.aggregate;
    println!(
        "campaign `{}`: {} points on {} thread(s) in {} ms",
        outcome.spec_name, agg.points, outcome.threads, outcome.wall_ms
    );
    let widths = [10, 10, 10, 12, 14, 12];
    print_header(
        &["ok", "errors", "accepted", "rounds", "bits", "dropped"],
        &widths,
    );
    print_row(
        &[
            &agg.ok.to_string(),
            &agg.errors.to_string(),
            &agg.accepted.to_string(),
            &agg.rounds.to_string(),
            &agg.bits.to_string(),
            &agg.dropped.to_string(),
        ],
        &widths,
    );
    println!("records: {out_path} (validated {validated} lines)");
    println!("summary: {summary_path}");
}
