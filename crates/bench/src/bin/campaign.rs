//! Campaign runner CLI: execute a named experiment campaign on a worker
//! pool with crash-safe journaling, and write machine-readable results.
//!
//! ```text
//! campaign [resume] <spec> [--threads N] [--sim-threads N] [--deterministic]
//!                          [--max-attempts N] [--deadline-ms MS]
//!                          [--backoff-seed N] [--throttle-ms MS] [--resume]
//!                          [--out FILE.jsonl] [--summary FILE.json]
//!                          [--trace-dir DIR] [--telemetry-dir DIR]
//!                          [--telemetry-stream] [--telemetry-top-k K] [--list]
//! campaign serve  [--addr HOST:PORT] [--data-dir DIR] [--workers N]
//!                 [--job-threads N] [--max-queue N] [--max-client-jobs N]
//!                 [--max-client-points N] [--throttle-ms MS]
//! campaign verify <records.jsonl> [--campaign NAME]
//! ```
//!
//! * `<spec>` — a built-in campaign name (`campaign --list` prints them);
//! * `resume` / `--resume` — recover the journal at `--out`, truncate any
//!   torn final line on its record boundary, fold the surviving records
//!   into the aggregate, and execute only the missing tail. A resumed
//!   deterministic run is byte-identical to an uninterrupted one;
//! * `--threads N` — worker pool size (default 1). The deterministic
//!   output is byte-identical for every `N`;
//! * `--sim-threads N` — worker threads for each point's round engine
//!   (the simulator's sharded compute phase; default 1). Also covered by
//!   the byte-identical contract;
//! * `--deterministic` — omit the volatile wall-clock fields from the
//!   record and telemetry files, so two runs of the same spec can be
//!   diffed byte-for-byte (CI's parallel-differential and
//!   interrupt-resume jobs do exactly this). The summary keeps its
//!   `threads`/`wall_ms` fields — its schema pins them — so only records
//!   and archives are diffable;
//! * `--max-attempts N` — attempt budget per point (default 1; the first
//!   try counts). Transient failures (watchdog trips, panics, deadline
//!   overruns) are retried with deterministic seeded backoff; permanent
//!   protocol violations are journaled after the first attempt;
//! * `--deadline-ms MS` — wall-clock deadline per attempt; an overrun
//!   becomes a `"deadline"` failure record (off by default);
//! * `--backoff-seed N` — seed of the deterministic retry backoff
//!   schedule (default 0; never the wall clock);
//! * `--throttle-ms MS` — testing aid: sleep before each point so
//!   interruption tests can land a signal mid-grid (default 0);
//! * `--out` — per-point JSONL journal (default `campaign_<spec>.jsonl`).
//!   Every committed point is durably appended (one write + fsync per
//!   line), so the file is a valid record-boundary prefix at every
//!   instant — SIGKILL included;
//! * `--summary` — aggregate summary (default `BENCH_<spec>.json`);
//! * `--trace-dir` — also archive each traced point's per-round traffic
//!   as `<dir>/point_<i>.trace.jsonl`;
//! * `--telemetry-dir` — profile each point with a telemetry sink
//!   (observation never changes results) and archive each profile as
//!   `<dir>/point_<i>.telemetry.jsonl` (the `profile` binary renders
//!   these). By default the sink is the exact in-memory profiler
//!   (`qdc-telemetry/v1` archives, O(rounds) memory);
//! * `--telemetry-stream` — swap the sink for the O(1)-memory streaming
//!   aggregator: each point's archive is written incrementally as
//!   `qdc-telemetry-stream/v1` JSONL the moment each round commits
//!   (windowed flush, never a full-run buffer), with mergeable totals,
//!   a utilisation histogram, and deterministic top-K hottest-edge /
//!   hottest-node sketches in the footer. Requires `--telemetry-dir`.
//!   Streamed archives obey the same byte-identical contract at any
//!   `--threads` / `--sim-threads` count (`profile query` reads them);
//! * `--telemetry-top-k K` — capacity of the streaming top-K sketches
//!   (default 16; exact whenever K ≥ the number of distinct edges or
//!   nodes). Requires `--telemetry-stream`.
//!
//! `campaign serve` keeps the process resident as the campaign service
//! (`qdc-service`): clients POST specs to `/jobs`, a worker pool runs
//! them through the same journaled runner, and `/jobs/<id>/records`
//! streams each journal live as chunked JSONL. The first stdout line is
//! `listening on <addr>` (with the resolved port — `--addr 127.0.0.1:0`
//! binds an ephemeral one), and SIGINT/SIGTERM drains gracefully to
//! exit 130: in-flight jobs stop on a journal flush, queued jobs stay
//! on disk, and a restart with the same `--data-dir` re-enqueues and
//! resumes them byte-identically.
//!
//! `campaign verify` is the dry-run journal classifier the service's
//! startup scan uses: `clean` (every byte committed), `recoverable`
//! (valid prefix plus a torn tail that resume would truncate), or
//! `foreign` (not this campaign's journal at all). Exit 0 for the first
//! two, 5 for foreign, 4 if the file cannot be read.
//!
//! On SIGINT/SIGTERM the runner drains in-flight points, flushes the
//! journal, writes a partial summary marked `"interrupted": true`, and
//! exits 130; `campaign resume <spec>` finishes the grid later.
//!
//! After running, the binary re-reads the JSONL journal and runs the
//! strict conformance validator over every line — point records and
//! failure records alike — plus the summary, so a zero exit status
//! certifies the output is schema-conformant (CI's smoke jobs rely on
//! this).
//!
//! Exit codes: `0` success, `2` usage, `3` invalid spec or options,
//! `4` I/O failure, `5` corrupt journal or failed self-check, `130`
//! interrupted by signal.

use qdc_bench::{print_header, print_row};
use qdc_harness::{
    builtin, builtin_names, journal_summary_json, run_campaign_journaled, validate_output_paths,
    CampaignRunError, CancelToken, JournalConfig, JournalOutcome, RunOptions, StreamTelemetry,
    TelemetryMode,
};

/// Signal plumbing: SIGINT/SIGTERM flip the shared [`CancelToken`] and
/// nothing else — the handler is a single atomic store, which is
/// async-signal-safe. The runner notices the token, drains, and shuts
/// down gracefully on the normal control path.
#[cfg(unix)]
mod signals {
    use qdc_harness::CancelToken;
    use std::sync::OnceLock;

    static TOKEN: OnceLock<CancelToken> = OnceLock::new();

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        if let Some(token) = TOKEN.get() {
            token.cancel();
        }
    }

    pub fn install(token: CancelToken) {
        let _ = TOKEN.set(token);
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        let handler = on_signal as *const () as usize;
        unsafe {
            signal(SIGINT, handler);
            signal(SIGTERM, handler);
        }
    }
}

#[cfg(not(unix))]
mod signals {
    use qdc_harness::CancelToken;

    pub fn install(_token: CancelToken) {}
}

struct Args {
    spec: String,
    threads: usize,
    sim_threads: usize,
    deterministic: bool,
    resume: bool,
    max_attempts: u32,
    deadline_ms: Option<u64>,
    backoff_seed: u64,
    throttle_ms: u64,
    out: Option<String>,
    summary: Option<String>,
    trace_dir: Option<String>,
    telemetry_dir: Option<String>,
    telemetry_stream: bool,
    telemetry_top_k: usize,
}

fn usage() -> ! {
    eprintln!(
        "usage: campaign [resume] <spec> [--threads N] [--sim-threads N] [--deterministic] \
         [--max-attempts N] [--deadline-ms MS] [--backoff-seed N] [--throttle-ms MS] \
         [--resume] [--out FILE.jsonl] [--summary FILE.json] [--trace-dir DIR] \
         [--telemetry-dir DIR] [--telemetry-stream] [--telemetry-top-k K] [--list]"
    );
    eprintln!("built-in specs: {}", builtin_names().join(", "));
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        spec: String::new(),
        threads: 1,
        sim_threads: 1,
        deterministic: false,
        resume: false,
        max_attempts: 1,
        deadline_ms: None,
        backoff_seed: 0,
        throttle_ms: 0,
        out: None,
        summary: None,
        trace_dir: None,
        telemetry_dir: None,
        telemetry_stream: false,
        telemetry_top_k: 16,
    };
    let mut saw_resume_word = false;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--list" => {
                for name in builtin_names() {
                    let spec = builtin(name).expect("listed builtins exist");
                    println!("{name}  ({} points)", spec.points().len());
                }
                std::process::exit(0);
            }
            "--threads" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => args.threads = n,
                None => usage(),
            },
            "--sim-threads" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => args.sim_threads = n,
                None => usage(),
            },
            "--deterministic" => args.deterministic = true,
            "--resume" => args.resume = true,
            "--max-attempts" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => args.max_attempts = n,
                None => usage(),
            },
            "--deadline-ms" => match it.next().and_then(|v| v.parse().ok()) {
                Some(ms) => args.deadline_ms = Some(ms),
                None => usage(),
            },
            "--backoff-seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => args.backoff_seed = n,
                None => usage(),
            },
            "--throttle-ms" => match it.next().and_then(|v| v.parse().ok()) {
                Some(ms) => args.throttle_ms = ms,
                None => usage(),
            },
            "--out" => match it.next() {
                Some(v) => args.out = Some(v),
                None => usage(),
            },
            "--summary" => match it.next() {
                Some(v) => args.summary = Some(v),
                None => usage(),
            },
            "--trace-dir" => match it.next() {
                Some(v) => args.trace_dir = Some(v),
                None => usage(),
            },
            "--telemetry-dir" => match it.next() {
                Some(v) => args.telemetry_dir = Some(v),
                None => usage(),
            },
            "--telemetry-stream" => args.telemetry_stream = true,
            "--telemetry-top-k" => match it.next().and_then(|v| v.parse().ok()) {
                Some(k) if k > 0 => args.telemetry_top_k = k,
                _ => usage(),
            },
            "--help" | "-h" => usage(),
            s if s.starts_with('-') => {
                eprintln!("unknown flag `{s}`");
                usage();
            }
            "resume" if args.spec.is_empty() && !saw_resume_word => {
                saw_resume_word = true;
                args.resume = true;
            }
            s if args.spec.is_empty() => args.spec = s.to_string(),
            _ => usage(),
        }
    }
    if args.spec.is_empty() {
        usage();
    }
    args
}

/// Validates one journal line against the strict schema for its kind:
/// failure records carry the `qdc-campaign-failure/v1` tag (always as
/// the leading `schema` field), everything else must be a point record.
fn validate_journal_line(line: &str) -> Result<(), String> {
    if line.starts_with("{\"schema\":\"qdc-campaign-failure/v1\"") {
        qdc_harness::validate_failure_line(line)
    } else {
        qdc_harness::validate_record_line(line)
    }
}

/// Re-reads the journal and summary from disk and runs the strict
/// conformance validators over every byte the campaign claims to have
/// written. Returns the number of validated journal lines.
fn self_check(
    out_path: &str,
    summary_path: &str,
    outcome: &JournalOutcome,
) -> Result<usize, String> {
    let written =
        std::fs::read_to_string(out_path).map_err(|e| format!("cannot re-read journal: {e}"))?;
    let mut n = 0;
    for (lineno, line) in written.lines().enumerate() {
        validate_journal_line(line).map_err(|e| format!("journal line {}: {e}", lineno + 1))?;
        n += 1;
    }
    let expected = outcome.recovered + outcome.executed;
    if n != expected {
        return Err(format!(
            "journal holds {n} lines but the run committed {expected} points"
        ));
    }
    let summary = std::fs::read_to_string(summary_path)
        .map_err(|e| format!("cannot re-read summary: {e}"))?;
    qdc_harness::validate_summary(&summary).map_err(|e| format!("summary: {e}"))?;
    Ok(n)
}

/// `campaign serve` — bind, recover the data dir, run until a signal.
fn serve_main(args: &[String]) -> ! {
    fn usage() -> ! {
        eprintln!(
            "usage: campaign serve [--addr HOST:PORT] [--data-dir DIR] [--workers N] \
             [--job-threads N] [--max-queue N] [--max-client-jobs N] \
             [--max-client-points N] [--throttle-ms MS]"
        );
        std::process::exit(2);
    }
    let mut addr = "127.0.0.1:7411".to_string();
    let mut config = qdc_service::ServiceConfig::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => match it.next() {
                Some(v) => addr = v.clone(),
                None => usage(),
            },
            "--data-dir" => match it.next() {
                Some(v) => config.data_dir = v.into(),
                None => usage(),
            },
            "--workers" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => config.workers = n,
                None => usage(),
            },
            "--job-threads" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => config.job_threads = n,
                None => usage(),
            },
            "--max-queue" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => config.quotas.max_queue = n,
                None => usage(),
            },
            "--max-client-jobs" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => config.quotas.max_queued_per_client = n,
                None => usage(),
            },
            "--max-client-points" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => config.quotas.max_points_per_client = n,
                None => usage(),
            },
            "--throttle-ms" => match it.next().and_then(|v| v.parse().ok()) {
                Some(ms) => config.throttle_ms = ms,
                None => usage(),
            },
            _ => usage(),
        }
    }

    let cancel = CancelToken::new();
    signals::install(cancel.clone());
    let data_dir = config.data_dir.clone();
    let server = match qdc_service::Server::bind(&addr, config, cancel.clone()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("campaign serve: cannot start on `{addr}`: {e}");
            std::process::exit(4);
        }
    };
    for warning in server.scan_warnings() {
        eprintln!("campaign serve: {warning}");
    }
    let local = server.local_addr().expect("bound listener has an address");
    // The `listening` line is the machine-readable handshake: tests and
    // scripts bind port 0 and read the resolved address from here. The
    // explicit flush matters — piped stdout is block-buffered.
    {
        use std::io::Write as _;
        let mut out = std::io::stdout();
        let _ = writeln!(out, "listening on {local}");
        let _ = writeln!(out, "data dir: {}", data_dir.display());
        let _ = out.flush();
    }
    if let Err(e) = server.run() {
        eprintln!("campaign serve: {e}");
        std::process::exit(4);
    }
    if cancel.is_cancelled() {
        eprintln!("campaign serve: interrupted — journals flushed, queue preserved on disk");
        std::process::exit(130);
    }
    std::process::exit(0);
}

/// `campaign verify` — dry-run journal triage, no writes.
fn verify_main(args: &[String]) -> ! {
    fn usage() -> ! {
        eprintln!("usage: campaign verify <records.jsonl> [--campaign NAME]");
        std::process::exit(2);
    }
    let mut path = String::new();
    let mut campaign: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--campaign" => match it.next() {
                Some(v) => campaign = Some(v.clone()),
                None => usage(),
            },
            "--help" | "-h" => usage(),
            s if s.starts_with('-') => {
                eprintln!("unknown flag `{s}`");
                usage();
            }
            s if path.is_empty() => path = s.to_string(),
            _ => usage(),
        }
    }
    if path.is_empty() {
        usage();
    }
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("campaign verify: cannot read `{path}`: {e}");
            std::process::exit(4);
        }
    };
    match qdc_service::classify_journal(&text, campaign.as_deref()) {
        qdc_service::JournalClass::Clean { entries } => {
            println!("{path}: clean — {entries} committed record(s), every byte accounted for");
            std::process::exit(0);
        }
        qdc_service::JournalClass::Recoverable {
            entries,
            kept_bytes,
            truncated_bytes,
        } => {
            println!(
                "{path}: recoverable — {entries} committed record(s) in {kept_bytes} bytes, \
                 torn tail of {truncated_bytes} byte(s) would be truncated on resume"
            );
            std::process::exit(0);
        }
        qdc_service::JournalClass::Foreign { reason } => {
            eprintln!("campaign verify: `{path}` is not this campaign's journal: {reason}");
            std::process::exit(5);
        }
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.first().map(String::as_str) {
        Some("serve") => serve_main(&argv[1..]),
        Some("verify") => verify_main(&argv[1..]),
        _ => {}
    }
    let args = parse_args();
    let spec = match builtin(&args.spec) {
        Some(s) => s,
        None => {
            eprintln!("campaign: unknown spec `{}`", args.spec);
            eprintln!("built-in specs: {}", builtin_names().join(", "));
            std::process::exit(2);
        }
    };
    let out_path = args
        .out
        .clone()
        .unwrap_or_else(|| format!("campaign_{}.jsonl", spec.name));
    let summary_path = args
        .summary
        .clone()
        .unwrap_or_else(|| format!("BENCH_{}.json", spec.name));
    if let Err(e) = validate_output_paths(&out_path, &summary_path) {
        eprintln!("campaign: {e}");
        std::process::exit(3);
    }
    if args.telemetry_stream && args.telemetry_dir.is_none() {
        eprintln!("campaign: --telemetry-stream requires --telemetry-dir");
        std::process::exit(3);
    }

    // Stream mode: the workers write `qdc-telemetry-stream/v1` archives
    // incrementally themselves, so the journal committer has nothing to
    // archive. Exact mode keeps the committer-written `qdc-telemetry/v1`
    // path.
    let telemetry = match &args.telemetry_dir {
        Some(dir) if args.telemetry_stream => {
            let mut cfg = StreamTelemetry::new(dir.clone());
            cfg.top_k = args.telemetry_top_k;
            cfg.with_wall = !args.deterministic;
            TelemetryMode::Stream(cfg)
        }
        Some(_) => TelemetryMode::Exact,
        None => TelemetryMode::Off,
    };
    let options = RunOptions {
        threads: args.threads,
        keep_traces: args.trace_dir.is_some(),
        telemetry,
        sim_threads: args.sim_threads,
        max_attempts: args.max_attempts,
        backoff_seed: args.backoff_seed,
        point_deadline_ms: args.deadline_ms,
        throttle_ms: args.throttle_ms,
    };
    let config = JournalConfig {
        out_path: out_path.clone(),
        trace_dir: args.trace_dir.clone(),
        telemetry_dir: args.telemetry_dir.clone(),
        resume: args.resume,
        with_wall: !args.deterministic,
    };
    let cancel = CancelToken::new();
    signals::install(cancel.clone());

    let outcome = match run_campaign_journaled(&spec, &options, &config, &cancel) {
        Ok(o) => o,
        Err(CampaignRunError::Spec(e)) => {
            eprintln!("campaign: {e}");
            std::process::exit(3);
        }
        Err(CampaignRunError::Io(e)) => {
            eprintln!("campaign: journal I/O failed: {e}");
            std::process::exit(4);
        }
        Err(CampaignRunError::Corrupt(msg)) => {
            eprintln!("campaign: corrupt journal `{out_path}`: {msg}");
            std::process::exit(5);
        }
    };

    // The summary is written even for an interrupted run — marked, so
    // downstream tooling can tell the partial fold from a complete one.
    if let Err(e) = std::fs::write(&summary_path, journal_summary_json(&outcome) + "\n") {
        eprintln!("campaign: writing summary failed: {e}");
        std::process::exit(4);
    }

    let validated = match self_check(&out_path, &summary_path, &outcome) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("campaign: self-check failed: {e}");
            std::process::exit(5);
        }
    };

    let agg = &outcome.aggregate;
    if outcome.recovered > 0 {
        println!(
            "campaign `{}`: recovered {} point(s) from `{out_path}`, resumed at point {}",
            outcome.spec_name, outcome.recovered, outcome.recovered
        );
    }
    println!(
        "campaign `{}`: {} of {} points on {} thread(s) in {} ms",
        outcome.spec_name, agg.points, outcome.total_points, outcome.threads, outcome.wall_ms
    );
    let widths = [10, 10, 10, 10, 12, 14, 12];
    print_header(
        &[
            "ok", "errors", "failed", "retried", "rounds", "bits", "dropped",
        ],
        &widths,
    );
    print_row(
        &[
            &agg.ok.to_string(),
            &agg.errors.to_string(),
            &agg.points_failed.to_string(),
            &agg.points_retried.to_string(),
            &agg.rounds.to_string(),
            &agg.bits.to_string(),
            &agg.dropped.to_string(),
        ],
        &widths,
    );
    println!("records: {out_path} (validated {validated} lines)");
    println!("summary: {summary_path}");

    if outcome.interrupted {
        eprintln!(
            "campaign: interrupted after {} of {} points — run `campaign resume {}` to finish",
            agg.points, outcome.total_points, outcome.spec_name
        );
        std::process::exit(130);
    }
}
