//! Shared harness utilities for the table/figure regeneration binaries.
//!
//! Each paper artifact (Figures 1–3, Example 1.1, the constructions of
//! Figures 4–13, Theorems 3.5–3.8) has a binary in `src/bin/` that prints
//! the corresponding rows/series, plus a Criterion bench where wall-clock
//! matters. This crate holds the tiny formatting and sweep helpers they
//! share. See EXPERIMENTS.md for the index and recorded outputs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod query;

/// Formats one table row with columns padded to `widths` (no trailing
/// newline).
pub fn fmt_row(cols: &[&str], widths: &[usize]) -> String {
    let mut line = String::new();
    for (c, w) in cols.iter().zip(widths) {
        line.push_str(&format!("{c:>w$}  ", w = *w));
    }
    line.trim_end().to_string()
}

/// Formats a header row followed by a rule, with columns padded to
/// `widths`.
pub fn fmt_header(cols: &[&str], widths: &[usize]) -> String {
    let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
    format!("{}\n{}", fmt_row(cols, widths), "-".repeat(total))
}

/// Prints a header row followed by a rule, with columns padded to
/// `widths`.
pub fn print_header(cols: &[&str], widths: &[usize]) {
    println!("{}", fmt_header(cols, widths));
}

/// Prints one table row with columns padded to `widths`.
pub fn print_row(cols: &[&str], widths: &[usize]) {
    println!("{}", fmt_row(cols, widths));
}

/// Formats a float compactly (3 significant-ish digits).
pub fn fmt_f(x: f64) -> String {
    if x == 0.0 {
        "0".into()
    } else if x.abs() >= 100.0 {
        format!("{x:.0}")
    } else if x.abs() >= 1.0 {
        format!("{x:.2}")
    } else {
        format!("{x:.4}")
    }
}

/// Geometric sweep: `count` values from `lo` to `hi` inclusive.
pub fn geometric_sweep(lo: f64, hi: f64, count: usize) -> Vec<f64> {
    assert!(count >= 2 && lo > 0.0 && hi > lo, "bad sweep");
    let r = (hi / lo).powf(1.0 / (count - 1) as f64);
    (0..count).map(|i| lo * r.powi(i as i32)).collect()
}

/// Doubling sweep of integers from `lo` to at most `hi`.
pub fn doubling_sweep(lo: usize, hi: usize) -> Vec<usize> {
    let mut v = Vec::new();
    let mut x = lo;
    while x <= hi {
        v.push(x);
        x *= 2;
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweeps() {
        let g = geometric_sweep(1.0, 16.0, 5);
        assert_eq!(g.len(), 5);
        assert!((g[4] - 16.0).abs() < 1e-9);
        assert_eq!(doubling_sweep(4, 32), vec![4, 8, 16, 32]);
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_f(0.0), "0");
        assert_eq!(fmt_f(1234.6), "1235");
        assert_eq!(fmt_f(12.3456), "12.35");
        assert_eq!(fmt_f(0.1234), "0.1234");
    }
}
