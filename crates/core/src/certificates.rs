//! Executable lower-bound certificates: the §9 contradiction arguments
//! with explicit constants.
//!
//! The proofs of Theorems 3.6 and 3.8 are numeric compositions: a
//! Server-model bound `Q ≥ c′·Γ` (Theorem 3.4), a simulation cost
//! `Q ≤ c·B·log₂L·T` for any `T ≤ L/2 − 2` (Theorem 3.5), and a choice
//! of `(L, Γ)` making the two collide unless `T` is large. A
//! [`BoundCertificate`] carries that whole derivation as data: every
//! inequality evaluated, every constant explicit, so the final `Ω(·)`
//! value is auditable step by step (and printable by the harnesses).

use crate::theorems::{theorem36_params, theorem38_params, TheoremParams};

/// The explicit constants of the composition.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CompositionConstants {
    /// `c′` — the Server-model hardness constant: `Q*(Ham_Γ) ≥ c′·Γ`
    /// qubits (Theorem 3.4 via Theorem 6.1; our normalized pipeline
    /// yields 1/32 from Paturi × the ½-bit gadget factor × the 12-nodes-
    /// per-bit reduction).
    pub server_constant: f64,
    /// `c` — the per-round simulation constant: Carol+David pay at most
    /// `c·B·log₂(L−1)` qubits per round (Theorem 3.5's proof uses 6; the
    /// measured audits stay under 2).
    pub simulation_constant: f64,
}

impl Default for CompositionConstants {
    fn default() -> Self {
        CompositionConstants {
            server_constant: 1.0 / 32.0,
            simulation_constant: 6.0,
        }
    }
}

/// A fully-evaluated lower-bound derivation.
#[derive(Clone, Debug)]
pub struct BoundCertificate {
    /// What is being bounded.
    pub statement: String,
    /// The concluded round lower bound.
    pub rounds: f64,
    /// The `(L, Γ)` instantiation used.
    pub params: TheoremParams,
    /// The derivation, one evaluated inequality per line.
    pub steps: Vec<String>,
}

impl BoundCertificate {
    /// Renders the certificate as text.
    pub fn render(&self) -> String {
        let mut s = format!("{}\n", self.statement);
        for (i, step) in self.steps.iter().enumerate() {
            s.push_str(&format!("  {}. {}\n", i + 1, step));
        }
        s.push_str(&format!("  ⇒ T ≥ {:.3} rounds\n", self.rounds));
        s
    }
}

fn compose(
    params: TheoremParams,
    bandwidth: usize,
    consts: &CompositionConstants,
    statement: String,
) -> BoundCertificate {
    let l = params.l as f64;
    let gamma = params.gamma as f64;
    let log_l = ((params.l.max(3) - 1) as f64).log2().max(1.0);
    let server_bound = consts.server_constant * gamma;
    let per_round = consts.simulation_constant * bandwidth as f64 * log_l;
    // If T ≤ L/2 − 2, simulation gives Q ≤ per_round · T, so
    // Q ≥ server_bound forces T ≥ server_bound / per_round — unless that
    // already exceeds the horizon, in which case the horizon itself is
    // the bound (the algorithm cannot finish within it at all).
    let horizon = (l / 2.0 - 2.0).max(1.0);
    let t_from_collision = server_bound / per_round;
    let rounds = t_from_collision.min(horizon).max(0.0);
    let steps = vec![
        format!(
            "Theorem 3.4 (Server hardness): Q*(Ham_Γ) ≥ c′·Γ = {:.4}·{} = {:.2} qubits",
            consts.server_constant, params.gamma, server_bound
        ),
        format!(
            "Theorem 3.5 (simulation): any T ≤ L/2−2 = {:.0} yields a Server protocol of \
             ≤ c·B·log₂(L−1)·T = {:.1}·T qubits",
            horizon, per_round
        ),
        format!(
            "collision: {:.1}·T ≥ {:.2} forces T ≥ {:.3}; capped by the horizon {:.0}",
            per_round, server_bound, t_from_collision, horizon
        ),
    ];
    BoundCertificate {
        statement,
        rounds,
        params,
        steps,
    }
}

/// The Theorem 3.6 certificate at `(n, B)`: a quantum round lower bound
/// for Hamiltonian-cycle / spanning-tree verification, derived with
/// explicit constants. Scales as `Θ(√(n/(B log n)))` in `n`.
pub fn theorem36_certificate(
    n: usize,
    bandwidth: usize,
    consts: &CompositionConstants,
) -> BoundCertificate {
    let params = theorem36_params(n, bandwidth);
    compose(
        params,
        bandwidth,
        consts,
        format!(
            "Theorem 3.6: (ε,ε)-error quantum Ham/ST verification on the n = {n}, B = {bandwidth} \
             hard network (Γ = {}, L = {})",
            params.gamma, params.l
        ),
    )
}

/// The Theorem 3.8 certificate at `(n, B, W, α)`: a quantum round lower
/// bound for α-approximate MST. Scales as
/// `Θ(min(W/α, √n)/√(B log n))`.
pub fn theorem38_certificate(
    n: usize,
    bandwidth: usize,
    w: f64,
    alpha: f64,
    consts: &CompositionConstants,
) -> BoundCertificate {
    let params = theorem38_params(n, bandwidth, w, alpha);
    let mut cert = compose(
        params,
        bandwidth,
        consts,
        format!(
            "Theorem 3.8: ε-error α = {alpha} approximate quantum MST on the n = {n}, \
             B = {bandwidth}, W = {w} hard network (Γ = {}, L = {})",
            params.gamma, params.l
        ),
    );
    cert.steps.insert(
        0,
        format!(
            "§9.2 reduction: an α-approx MST with the weight gadget (M-edges 1, rest W = {w}) \
             decides (βΓ)-Ham with one-sided error, since W > α·n ⇒ any far input exceeds α(n−1)"
        ),
    );
    cert
}

/// Sanity relation between the certificate and the closed-form curve:
/// both scale the same way (used in tests and the harness).
pub fn certificate_tracks_curve(n: usize, bandwidth: usize) -> (f64, f64) {
    let cert = theorem36_certificate(n, bandwidth, &CompositionConstants::default());
    let curve = crate::bounds::verification_lower_bound(n, bandwidth);
    (cert.rounds, curve)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thm36_certificate_scales_like_sqrt_n() {
        let c = CompositionConstants::default();
        let small = theorem36_certificate(1 << 14, 16, &c);
        let large = theorem36_certificate(1 << 18, 16, &c);
        let ratio = large.rounds / small.rounds;
        // ×16 nodes ⇒ ≈ ×4 (√n), within log slack.
        assert!(ratio > 2.5 && ratio < 5.0, "ratio {ratio}");
        assert_eq!(small.steps.len(), 3);
        assert!(small.render().contains("Theorem 3.4"));
    }

    #[test]
    fn certificate_and_curve_agree_in_shape() {
        let (c1, f1) = certificate_tracks_curve(1 << 14, 16);
        let (c2, f2) = certificate_tracks_curve(1 << 18, 16);
        let cert_growth = c2 / c1;
        let curve_growth = f2 / f1;
        assert!(
            (cert_growth / curve_growth - 1.0).abs() < 0.5,
            "certificate ×{cert_growth:.2} vs curve ×{curve_growth:.2}"
        );
    }

    #[test]
    fn thm38_certificate_saturates_at_the_verification_bound() {
        // At huge W the §9.2 parameters coincide with §9.1's, so the two
        // certificates agree (up to the ceil-rounding of Γ).
        let c = CompositionConstants::default();
        let n = 1 << 16;
        let big_w = theorem38_certificate(n, 16, 1e12, 2.0, &c);
        let verification = theorem36_certificate(n, 16, &c);
        let rel = (big_w.rounds - verification.rounds).abs() / verification.rounds;
        assert!(rel < 0.05, "relative gap {rel}");
        assert_eq!(big_w.steps.len(), 4); // the §9.2 reduction step added
        assert!(big_w.rounds > 0.0);
        // The small-W certificate is positive too and its derivation is
        // well-formed (the binding branch depends on the constants; the
        // sound statement is T ≥ min(horizon, collision)).
        let small_w = theorem38_certificate(n, 16, 128.0, 2.0, &c);
        assert!(small_w.rounds > 0.0);
        assert!(small_w.render().contains("§9.2 reduction"));
    }

    #[test]
    fn larger_simulation_constant_weakens_the_bound() {
        let tight = CompositionConstants {
            simulation_constant: 2.0, // what the audits actually measure
            ..Default::default()
        };
        let loose = CompositionConstants::default();
        let a = theorem36_certificate(1 << 16, 16, &tight);
        let b = theorem36_certificate(1 << 16, 16, &loose);
        assert!(a.rounds >= b.rounds);
    }

    #[test]
    fn bound_never_exceeds_horizon() {
        // Pathological constants cannot push the bound past the horizon
        // (L/2 − 2, floored at 1 for degenerate L).
        let crazy = CompositionConstants {
            server_constant: 1e9,
            simulation_constant: 1e-9,
        };
        let cert = theorem36_certificate(1 << 12, 16, &crazy);
        let horizon = (cert.params.l as f64 / 2.0 - 2.0).max(1.0);
        assert!(cert.rounds <= horizon + 1e-9);
    }
}
