//! The paper's primary contribution, assembled: lower-bound formulas,
//! theorem parameter composition, and the Figure 1 pipeline.
//!
//! This crate ties the substrates together the way Sections 6–9 do:
//!
//! * [`bounds`] — the closed-form lower/upper bound curves of Figures 2
//!   and 3: `Ω(√(n/(B log n)))` for verification (Theorem 3.6),
//!   `Ω(min(W/α, √n)/√(B log n))` for α-approximate optimization
//!   (Theorem 3.8), the matching classical upper bounds, and the Figure 3
//!   crossover points `W = Θ(α√n)` and `W = Θ(αn)`;
//! * [`theorems`] — the §9.1/§9.2 parameter choices `(L, Γ)` that
//!   instantiate the simulation network for each theorem, plus the weight
//!   gadget (`M`-edges weight 1, others weight `W`) and `α(n−1)` decision
//!   threshold of the Theorem 3.8 reduction;
//! * [`certificates`] — the §9 contradiction arguments as auditable,
//!   fully-evaluated derivations with explicit constants;
//! * [`pipeline`] — the executable Figure 1: nonlocal games → Server-model
//!   hardness → gadget reduction → simulation network → distributed
//!   bound, with every arrow validated on concrete instances.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounds;
pub mod certificates;
pub mod pipeline;
pub mod theorems;
