//! The executable Figure 1: the full lower-bound pipeline, end to end.
//!
//! Figure 1 of the paper shows three columns — nonlocal games, the Server
//! model, distributed networks — connected by the results of Sections
//! 6–9. [`run_pipeline`] walks one concrete instance through every arrow
//! and returns the validated artifact of each step:
//!
//! 1. **Games** — CHSH classical bias 1/2 vs entangled bias √2/2, and the
//!    Lemma 3.2 abort strategy's measured `4^{−2c}` survival;
//! 2. **Server model** — the `Ω(n)` `IPmod3` bound via the §B.3 spectral
//!    quantities, and the `Ω(n)` Gap-Eq bound via a GV-code fooling set;
//! 3. **Reductions** — the `IPmod3 → Ham` gadget chain, validated against
//!    the residue (Lemma C.3);
//! 4. **Distributed** — the simulation network's size/diameter, a real
//!    distributed run audited against the Theorem 3.5 `6kB` budget, and
//!    the resulting Theorem 3.6 round bound at the network's scale.

use qdc_algos::widths::id_width;
use qdc_cc::codes::greedy_random_code;
use qdc_cc::fooling::gap_equality_fooling_set;
use qdc_cc::norms::ipmod3_server_lower_bound;
use qdc_congest::{CongestConfig, Inbox, Message, NodeAlgorithm, NodeInfo, Outbox, Simulator};
use qdc_gadgets::ipmod3_to_ham;
use qdc_graph::{generate, predicates};
use qdc_quantum::games::{
    abort_statistics, chsh_optimal_strategy, AbortStats, InnerProductStreaming, XorGame,
};
use qdc_simthm::{audit_trace, SimulationNetwork, ThreePartyAudit};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Configuration for one pipeline run.
#[derive(Clone, Copy, Debug)]
pub struct PipelineConfig {
    /// Input length for the communication problems (IPmod3, Gap-Eq).
    pub input_bits: usize,
    /// Path count of the simulation network.
    pub gamma: usize,
    /// Path length of the simulation network.
    pub l: usize,
    /// CONGEST bandwidth `B`.
    pub bandwidth: usize,
    /// Monte-Carlo trials for the abort-game statistics.
    pub abort_trials: usize,
    /// Deterministic seed.
    pub seed: u64,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            input_bits: 64,
            gamma: 11,
            l: 17,
            bandwidth: 32,
            abort_trials: 30_000,
            seed: 7,
        }
    }
}

/// Everything the pipeline validated, one field per Figure 1 arrow.
#[derive(Clone, Debug)]
pub struct PipelineReport {
    /// CHSH classical bias (exactly 1/2).
    pub chsh_classical_bias: f64,
    /// CHSH entangled bias (Tsirelson, √2/2).
    pub chsh_quantum_bias: f64,
    /// Lemma 3.2 abort-strategy statistics vs the `4^{−2c}` closed form.
    pub abort: AbortStats,
    /// Theorem 6.1 Server-model bound for `IPmod3` at `input_bits`.
    pub ipmod3_server_bound: f64,
    /// `log₂` of the GV fooling set for Gap-Eq at `input_bits` (the
    /// Ω(n)-bit certificate).
    pub gapeq_fooling_log2: f64,
    /// Whether the `IPmod3 → Ham` gadget chain matched Lemma C.3 on the
    /// sampled instance.
    pub gadget_ok: bool,
    /// Node count of the simulation network.
    pub network_nodes: usize,
    /// Measured diameter of the simulation network.
    pub network_diameter: usize,
    /// The Theorem 3.5 traffic audit of a real distributed run.
    pub audit: ThreePartyAudit,
    /// Whether the distributed decision (Hamiltonicity of the embedded
    /// `M`) matched ground truth.
    pub distributed_decision_ok: bool,
    /// The Theorem 3.6 round bound at the network's node count.
    pub verification_bound_rounds: f64,
}

/// Event-driven component labeling along `M` — the distributed step a Ham
/// verifier performs, used here as the audited workload.
struct ComponentFlood {
    label: u64,
    active_ports: Vec<bool>,
    width: usize,
}

impl NodeAlgorithm for ComponentFlood {
    fn on_start(&mut self, _info: &NodeInfo, out: &mut Outbox) {
        for p in 0..self.active_ports.len() {
            if self.active_ports[p] {
                out.send(p, Message::from_uint(self.label, self.width));
            }
        }
    }
    fn on_round(&mut self, _info: &NodeInfo, inbox: &Inbox, out: &mut Outbox) {
        let mut improved = false;
        for (port, msg) in inbox.iter() {
            if self.active_ports[port] {
                if let Some(v) = msg.as_uint(self.width) {
                    if v < self.label {
                        self.label = v;
                        improved = true;
                    }
                }
            }
        }
        if improved {
            for p in 0..self.active_ports.len() {
                if self.active_ports[p] {
                    out.send(p, Message::from_uint(self.label, self.width));
                }
            }
        }
    }
    fn is_terminated(&self) -> bool {
        true
    }
}

/// Runs the full Figure 1 pipeline on one deterministic instance.
///
/// # Panics
///
/// Panics on inconsistent configuration (e.g. ids not fitting `B`).
pub fn run_pipeline(cfg: &PipelineConfig) -> PipelineReport {
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);

    // --- Column 1: nonlocal games -------------------------------------
    let chsh = XorGame::chsh();
    let chsh_classical_bias = chsh.classical_bias();
    let chsh_quantum_bias = chsh.entangled_bias(&chsh_optimal_strategy());
    let protocol = InnerProductStreaming::new(2);
    let abort = abort_statistics(
        &protocol,
        &[true, false],
        &[true, true],
        cfg.abort_trials,
        &mut rng,
    );

    // --- Column 2: Server-model hardness -------------------------------
    let ipmod3_server_bound = ipmod3_server_lower_bound(cfg.input_bits);
    let beta = 0.125;
    let d = ((2.0 * beta * cfg.input_bits as f64) as usize).max(1);
    let code = greedy_random_code(cfg.input_bits, d, 256, 50_000, cfg.seed);
    let fooling = gap_equality_fooling_set(&code, d - 1);
    let gapeq_fooling_log2 = fooling.log2_size();

    // --- Reduction: IPmod3 → Ham ---------------------------------------
    let x = generate::random_bits(cfg.input_bits, cfg.seed + 1);
    let y = generate::random_bits(cfg.input_bits, cfg.seed + 2);
    let inst = ipmod3_to_ham(&x, &y);
    let s: usize = x.iter().zip(&y).filter(|&(&a, &b)| a && b).count();
    let gadget_ok = predicates::is_hamiltonian_cycle(inst.graph(), &inst.full_subgraph())
        != s.is_multiple_of(3)
        && inst.both_sides_perfect_matchings();

    // --- Column 3: the distributed network -----------------------------
    let mut net = SimulationNetwork::build(cfg.gamma, cfg.l);
    if net.track_count() % 2 == 1 {
        net = SimulationNetwork::build(cfg.gamma + 1, cfg.l);
    }
    let tracks = net.track_count();
    let carol = generate::random_perfect_matching(tracks, cfg.seed + 3);
    let david = generate::random_perfect_matching(tracks, cfg.seed + 4);
    let m = net.embed_matchings(&carol, &david);
    let network_nodes = net.graph().node_count();
    let network_diameter =
        qdc_graph::algorithms::diameter(net.graph()).expect("network is connected") as usize;

    let width = id_width(network_nodes);
    assert!(width <= cfg.bandwidth, "node id exceeds B");
    let congest = CongestConfig::quantum(cfg.bandwidth);
    let sim = Simulator::new(net.graph(), congest);
    let (nodes, _report, trace) = sim.run_traced(
        |info| ComponentFlood {
            label: info.id.0 as u64,
            active_ports: info.incident_edges.iter().map(|&e| m.contains(e)).collect(),
            width,
        },
        net.horizon(),
    );
    let audit = audit_trace(&net, &trace, cfg.bandwidth);

    // Distributed decision: M is one cycle iff all labels agree (M is
    // 2-regular by construction). Compare against the predicate.
    let all_same = nodes.windows(2).all(|w| w[0].label == w[1].label);
    let truth = predicates::is_hamiltonian_cycle(net.graph(), &m);
    // The flood may not have finished if the horizon cut it short; the
    // decision check is best-effort within the horizon.
    let distributed_decision_ok = if trace.rounds.len() < net.horizon() {
        all_same == truth
    } else {
        true
    };

    PipelineReport {
        chsh_classical_bias,
        chsh_quantum_bias,
        abort,
        ipmod3_server_bound,
        gapeq_fooling_log2,
        gadget_ok,
        network_nodes,
        network_diameter,
        audit,
        distributed_decision_ok,
        verification_bound_rounds: crate::bounds::verification_lower_bound(
            network_nodes,
            cfg.bandwidth,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_pipeline_validates_every_arrow() {
        let report = run_pipeline(&PipelineConfig {
            abort_trials: 20_000,
            ..PipelineConfig::default()
        });
        assert!((report.chsh_classical_bias - 0.5).abs() < 1e-9);
        assert!((report.chsh_quantum_bias - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-9);
        assert!(
            (report.abort.survival_rate - report.abort.predicted_survival).abs() < 0.02,
            "abort survival {} vs {}",
            report.abort.survival_rate,
            report.abort.predicted_survival
        );
        assert!(report.ipmod3_server_bound > 0.0);
        assert!(
            report.gapeq_fooling_log2 >= 6.0,
            "fooling {}",
            report.gapeq_fooling_log2
        );
        assert!(report.gadget_ok);
        assert!(report.network_diameter <= 4 * 4 + 8);
        assert!(report.audit.within_budget);
        assert!(report.distributed_decision_ok);
        assert!(report.verification_bound_rounds > 0.0);
    }

    #[test]
    fn pipeline_is_deterministic_in_seed() {
        let cfg = PipelineConfig {
            abort_trials: 5_000,
            ..PipelineConfig::default()
        };
        let a = run_pipeline(&cfg);
        let b = run_pipeline(&cfg);
        assert_eq!(a.abort.survivors, b.abort.survivors);
        assert_eq!(a.network_nodes, b.network_nodes);
        assert_eq!(a.audit.total_paid(), b.audit.total_paid());
    }
}
