//! Parameter composition for Theorems 3.6 and 3.8 (Section 9).
//!
//! Both proofs instantiate the Quantum Simulation Theorem with specific
//! `(L, Γ)`: verification (§9.1) uses `L ≈ √(n/(B log n))`,
//! `Γ ≈ √(B n log n)`; optimization (§9.2) uses
//! `L ≈ min(W/α, √n)/√(B log n)`, `Γ ≈ √(B log n)·max(nα/W, √n)`.
//! Universal constants are normalized to 1 (see `bounds`); the checks
//! that matter — `Γ·L = Θ(n)`, diameter `Θ(log n)`, and the §9.2 weight
//! gadget's decision soundness — are executable and tested.

use crate::bounds::log2_clamped;
use qdc_graph::{EdgeWeights, Graph, Subgraph};
use qdc_simthm::SimulationNetwork;

/// The §9.1 instantiation for Theorem 3.6 (verification).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TheoremParams {
    /// Path length `L`.
    pub l: usize,
    /// Path count `Γ`.
    pub gamma: usize,
}

impl TheoremParams {
    /// Builds the simulation network with these parameters.
    pub fn network(&self) -> SimulationNetwork {
        SimulationNetwork::build(self.gamma, self.l)
    }

    /// `Γ · L`, the leading node-count term.
    pub fn node_scale(&self) -> usize {
        self.gamma * self.l
    }
}

/// Theorem 3.6 parameters: `L = √(n/(B log n))`, `Γ = √(B n log n)`
/// (constants normalized, floors clamped to valid minima).
pub fn theorem36_params(n: usize, bandwidth: usize) -> TheoremParams {
    let logn = log2_clamped(n);
    let l = ((n as f64 / (bandwidth as f64 * logn)).sqrt().floor() as usize).max(3);
    let gamma = ((bandwidth as f64 * n as f64 * logn).sqrt().ceil() as usize).max(1);
    TheoremParams { l, gamma }
}

/// Theorem 3.8 parameters (§9.2): `L = min(W/α, √n)/√(B log n)`,
/// `Γ = √(B log n)·max(nα/W, √n)`.
pub fn theorem38_params(n: usize, bandwidth: usize, w: f64, alpha: f64) -> TheoremParams {
    assert!(alpha >= 1.0 && w >= alpha, "need 1 ≤ α < W");
    let logn = log2_clamped(n);
    let sqrt_blog = (bandwidth as f64 * logn).sqrt();
    let l = (((w / alpha).min((n as f64).sqrt()) / sqrt_blog).floor() as usize).max(3);
    let gamma =
        ((sqrt_blog * (n as f64 * alpha / w).max((n as f64).sqrt())).ceil() as usize).max(1);
    TheoremParams { l, gamma }
}

/// The §9.2 weight gadget: edges of the subnetwork `M` get weight 1,
/// every other network edge gets weight `W`.
///
/// # Panics
///
/// Panics if `w == 0`.
pub fn weight_gadget(graph: &Graph, m: &Subgraph, w: u64) -> EdgeWeights {
    assert!(w >= 1, "aspect ratio weight must be positive");
    let weights = graph
        .edges()
        .map(|e| if m.contains(e) { 1 } else { w })
        .collect();
    EdgeWeights::from_vec(graph, weights)
}

/// The §9.2 decision rule: an α-approximate MST of the gadget weights has
/// weight at most `α(n−1)` **iff** `M` is a connected spanning subgraph
/// (for `W > α·n`, since a disconnected `M` forces at least one weight-`W`
/// edge into any spanning tree).
pub fn decide_connected_from_mst(mst_weight: u64, n: usize, alpha: f64) -> bool {
    mst_weight as f64 <= alpha * (n as f64 - 1.0)
}

/// Verifies the §9.2 separation analytically: connected `M` gives MST
/// weight exactly `n−1`; a `δ`-far `M` forces weight at least
/// `(n−1−δ) + δ·W`. Returns the two weights.
pub fn thm38_weight_separation(n: usize, delta: usize, w: u64) -> (u64, u64) {
    let connected = n as u64 - 1;
    let far = (n as u64 - 1 - delta as u64) + delta as u64 * w;
    (connected, far)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdc_graph::{algorithms, predicates};

    #[test]
    fn thm36_product_is_theta_n() {
        for &(n, b) in &[(1usize << 12, 16usize), (1 << 14, 16), (1 << 16, 32)] {
            let p = theorem36_params(n, b);
            let scale = p.node_scale() as f64 / n as f64;
            assert!((0.5..2.0).contains(&scale), "n={n}, B={b}: ΓL/n = {scale}");
        }
    }

    #[test]
    fn thm36_l_matches_verification_bound_scale() {
        let n = 1 << 14;
        let p = theorem36_params(n, 16);
        let bound = crate::bounds::verification_lower_bound(n, 16);
        assert!(
            (p.l as f64 - bound).abs() <= 1.0,
            "L={} vs bound {bound}",
            p.l
        );
    }

    #[test]
    fn thm38_two_regimes() {
        let n = 1 << 14;
        let b = 16;
        // Small W: L grows with W.
        let p1 = theorem38_params(n, b, 64.0, 2.0);
        let p2 = theorem38_params(n, b, 128.0, 2.0);
        assert!(p2.l >= p1.l);
        // Huge W: L saturates at the Theorem 3.6 value.
        let p3 = theorem38_params(n, b, 1e12, 2.0);
        let p4 = theorem36_params(n, b);
        assert_eq!(p3.l, p4.l);
        // ΓL stays Θ(n) across regimes.
        for p in [p1, p2, p3] {
            let scale = p.node_scale() as f64 / n as f64;
            assert!((0.4..3.0).contains(&scale), "scale {scale}");
        }
    }

    #[test]
    fn small_thm36_network_has_log_diameter() {
        let p = theorem36_params(4096, 8);
        // Scale down for an exact-diameter check.
        let small = TheoremParams {
            l: p.l.min(17),
            gamma: p.gamma.min(8),
        };
        let net = small.network();
        let d = algorithms::diameter(net.graph()).unwrap() as usize;
        assert!(d <= net.diameter_upper_bound());
    }

    #[test]
    fn weight_gadget_assigns_and_separates() {
        let net = SimulationNetwork::build(5, 9);
        let tracks = net.track_count();
        let (carol, david) = qdc_graph::generate::hamiltonian_matching_pair(tracks);
        let m = net.embed_matchings(&carol, &david);
        let w = 1000;
        let weights = weight_gadget(net.graph(), &m, w);
        assert_eq!(weights.aspect_ratio(), w as f64);
        // M is a Hamiltonian cycle ⇒ spanning connected ⇒ MST = n − 1.
        assert!(predicates::is_hamiltonian_cycle(net.graph(), &m));
        let mst = algorithms::kruskal_mst(net.graph(), &weights);
        assert_eq!(mst.total_weight, net.graph().node_count() as u64 - 1);
        assert!(decide_connected_from_mst(
            mst.total_weight,
            net.graph().node_count(),
            2.0
        ));
    }

    #[test]
    fn weight_gadget_rejects_disconnected_m() {
        let net = SimulationNetwork::build(5, 9);
        let tracks = net.track_count();
        let (carol, david) = qdc_graph::generate::hamiltonian_matching_pair(tracks);
        let mut m = net.embed_matchings(&carol, &david);
        // M is a single cycle; removing ONE edge still leaves it
        // connected, so drop TWO edges far apart to split it.
        let victims: Vec<_> = m.edges().collect();
        m.remove(victims[0]);
        m.remove(victims[victims.len() / 2]);
        assert!(!predicates::is_spanning_connected_subgraph(net.graph(), &m));
        let n = net.graph().node_count();
        let alpha = 2.0;
        // W > αn so one W-edge already blows the α(n−1) budget.
        let w = (alpha as u64) * (n as u64) * 2;
        let weights = weight_gadget(net.graph(), &m, w);
        let mst = algorithms::kruskal_mst(net.graph(), &weights);
        assert!(!decide_connected_from_mst(mst.total_weight, n, alpha));
    }

    #[test]
    fn separation_formula() {
        let (conn, far) = thm38_weight_separation(100, 5, 1_000);
        assert_eq!(conn, 99);
        assert_eq!(far, 94 + 5_000);
        assert!(far as f64 > 2.0 * 99.0);
    }

    #[test]
    #[should_panic(expected = "1 ≤ α < W")]
    fn thm38_rejects_w_below_alpha() {
        theorem38_params(1024, 8, 1.5, 2.0);
    }
}
