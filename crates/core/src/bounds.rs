//! Closed-form bound curves for Figures 2 and 3.
//!
//! Theory lower bounds come with unspecified universal constants; we
//! normalize them to 1 and treat the curves as *shapes* — what the
//! benchmark harnesses compare against measured simulator rounds is the
//! scaling (√n, W/α, crossover positions), not absolute values. All
//! formulas take `log = log₂` and clamp pathological inputs.

/// `log₂ n`, clamped below at 1 to keep denominators sane for tiny `n`.
pub fn log2_clamped(n: usize) -> f64 {
    (n.max(2) as f64).log2().max(1.0)
}

/// Theorem 3.6: the quantum (and classical) verification lower bound
/// `Ω(√(n / (B log n)))` rounds, for Hamiltonian cycle, spanning tree and
/// every Corollary 3.7 problem.
pub fn verification_lower_bound(n: usize, bandwidth: usize) -> f64 {
    (n as f64 / (bandwidth as f64 * log2_clamped(n))).sqrt()
}

/// Theorem 3.8: the α-approximate optimization lower bound
/// `Ω(min(W/α, √n) / √(B log n))` rounds, for MST, min cut, shortest
/// paths and every Corollary 3.9 problem.
pub fn optimization_lower_bound(n: usize, bandwidth: usize, w: f64, alpha: f64) -> f64 {
    assert!(alpha >= 1.0, "approximation ratio is at least 1");
    let numerator = (w / alpha).min((n as f64).sqrt());
    numerator / (bandwidth as f64 * log2_clamped(n)).sqrt()
}

/// The Kutten–Peleg exact-MST upper bound shape `Õ(√n + D)` (also the
/// Das Sarma et al. verification upper bound).
pub fn sqrt_n_plus_d_upper(n: usize, diameter: usize) -> f64 {
    (n as f64).sqrt() + diameter as f64
}

/// Elkin's α-approximate MST upper bound shape `O(W/α + D)`.
pub fn elkin_upper(w: f64, alpha: f64, diameter: usize) -> f64 {
    w / alpha + diameter as f64
}

/// The best-of-both upper bound of Figure 3: `min(W/α, √n) + D`.
pub fn mst_combined_upper(n: usize, diameter: usize, w: f64, alpha: f64) -> f64 {
    (w / alpha).min((n as f64).sqrt()) + diameter as f64
}

/// Figure 3's first crossover: below `W = α·√n` the Elkin branch wins.
pub fn fig3_first_crossover(n: usize, alpha: f64) -> f64 {
    alpha * (n as f64).sqrt()
}

/// Figure 3's second knee: at `W = α·n` the lower bound saturates at √n
/// for every `W` (the regime where the reduction's weight gadget tops
/// out).
pub fn fig3_second_crossover(n: usize, alpha: f64) -> f64 {
    alpha * n as f64
}

/// One row of the Figure 3 data: `W`, lower bound, both upper-bound
/// branches.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Fig3Point {
    /// Weight aspect ratio.
    pub w: f64,
    /// Theorem 3.8 lower bound (quantum, with entanglement).
    pub lower: f64,
    /// Elkin `O(W/α + D)` branch.
    pub upper_elkin: f64,
    /// Kutten–Peleg `Õ(√n + D)` branch.
    pub upper_exact: f64,
}

/// Samples the Figure 3 curves geometrically over `[w_min, w_max]`.
pub fn fig3_series(
    n: usize,
    bandwidth: usize,
    diameter: usize,
    alpha: f64,
    w_min: f64,
    w_max: f64,
    points: usize,
) -> Vec<Fig3Point> {
    assert!(
        points >= 2 && w_min > 0.0 && w_max > w_min,
        "bad sweep range"
    );
    let ratio = (w_max / w_min).powf(1.0 / (points - 1) as f64);
    (0..points)
        .map(|i| {
            let w = w_min * ratio.powi(i as i32);
            Fig3Point {
                w,
                lower: optimization_lower_bound(n, bandwidth, w, alpha),
                upper_elkin: elkin_upper(w, alpha, diameter),
                upper_exact: sqrt_n_plus_d_upper(n, diameter),
            }
        })
        .collect()
}

/// One row of the Figure 2 table: a problem, the classical-era bound and
/// this paper's quantum bound, both instantiated at `(n, B)`.
#[derive(Clone, Debug)]
pub struct Fig2Row {
    /// Problem name.
    pub problem: &'static str,
    /// Previous result (setting + bound), as in the left column.
    pub previous: &'static str,
    /// This paper's result, as in the right column.
    pub new: &'static str,
    /// The new bound's value at `(n, B)` in rounds.
    pub bound_rounds: f64,
}

/// The Figure 2 table instantiated at `(n, B)` (distributed-network half).
pub fn fig2_rows(n: usize, bandwidth: usize) -> Vec<Fig2Row> {
    let v = verification_lower_bound(n, bandwidth);
    let o = optimization_lower_bound(n, bandwidth, n as f64, 1.0);
    vec![
        Fig2Row {
            problem: "Ham, ST, MST verification",
            previous: "Ω(√(n/(B log n))) deterministic, classical",
            new: "Ω(√(n/(B log n))) two-sided error, quantum + entanglement",
            bound_rounds: v,
        },
        Fig2Row {
            problem: "Connectivity & other verification (Cor. 3.7)",
            previous: "Ω(√(n/(B log n))) two-sided error, classical",
            new: "Ω(√(n/(B log n))) two-sided error, quantum + entanglement",
            bound_rounds: v,
        },
        Fig2Row {
            problem: "α-approx MST & other optimization (Cor. 3.9)",
            previous: "Ω(√(n/(B log n))) Monte Carlo, classical (W = Ω(αn))",
            new: "Ω(min(√n, W/α)/√(B log n)) Monte Carlo, quantum + entanglement",
            bound_rounds: o,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verification_bound_scales_as_sqrt_n() {
        let b1 = verification_lower_bound(1 << 10, 16);
        let b2 = verification_lower_bound(1 << 14, 16);
        // ×16 nodes ⇒ ×4/√(log ratio) ≈ ×3.38.
        let ratio = b2 / b1;
        assert!(ratio > 3.0 && ratio < 4.0, "ratio {ratio}");
    }

    #[test]
    fn verification_bound_decreases_in_bandwidth() {
        assert!(verification_lower_bound(4096, 1) > verification_lower_bound(4096, 64));
    }

    #[test]
    fn optimization_bound_has_two_regimes() {
        let n = 1 << 12;
        let alpha = 2.0;
        // Small W: bound grows linearly in W.
        let a = optimization_lower_bound(n, 16, 8.0, alpha);
        let b = optimization_lower_bound(n, 16, 16.0, alpha);
        assert!((b / a - 2.0).abs() < 1e-9);
        // Large W: bound saturates at √n/√(B log n).
        let c = optimization_lower_bound(n, 16, 1e9, alpha);
        let d = optimization_lower_bound(n, 16, 1e12, alpha);
        assert_eq!(c, d);
        assert!((c - verification_lower_bound(n, 16)).abs() < 1e-9);
    }

    #[test]
    fn fig3_crossovers_are_where_branches_meet() {
        let n = 1 << 12;
        let alpha = 2.0;
        let w = fig3_first_crossover(n, alpha);
        // At the first crossover the Elkin branch equals √n (+D terms).
        assert!((w / alpha - (n as f64).sqrt()).abs() < 1e-9);
        assert!(fig3_second_crossover(n, alpha) > w);
    }

    #[test]
    fn fig3_series_shape() {
        let pts = fig3_series(1 << 12, 16, 12, 2.0, 2.0, 1e7, 30);
        assert_eq!(pts.len(), 30);
        // Lower bound is monotone nondecreasing in W and saturates.
        for pair in pts.windows(2) {
            assert!(pair[1].lower >= pair[0].lower - 1e-12);
        }
        assert!((pts.last().unwrap().lower - verification_lower_bound(1 << 12, 16)).abs() < 1e-9);
        // The exact branch is flat; Elkin's grows.
        assert_eq!(pts[0].upper_exact, pts[29].upper_exact);
        assert!(pts[29].upper_elkin > pts[0].upper_elkin);
        // Before the first crossover Elkin wins, after it the exact wins.
        let cross = fig3_first_crossover(1 << 12, 2.0);
        for p in &pts {
            if p.w < cross / 4.0 {
                assert!(p.upper_elkin <= p.upper_exact, "W = {}", p.w);
            }
            if p.w > cross * 4.0 {
                assert!(p.upper_exact <= p.upper_elkin, "W = {}", p.w);
            }
        }
    }

    #[test]
    fn fig2_rows_are_consistent() {
        let rows = fig2_rows(1 << 12, 16);
        assert_eq!(rows.len(), 3);
        // At W = n, α = 1 the optimization bound equals the verification
        // bound's √n regime.
        assert!((rows[0].bound_rounds - rows[1].bound_rounds).abs() < 1e-12);
        assert!(rows[2].bound_rounds <= rows[0].bound_rounds + 1e-12);
    }

    #[test]
    fn upper_bounds_behave() {
        assert!(sqrt_n_plus_d_upper(1 << 12, 10) > 64.0);
        assert!(elkin_upper(100.0, 2.0, 5) == 55.0);
        assert_eq!(mst_combined_upper(1 << 12, 0, 1e9, 2.0), 64.0);
    }
}
