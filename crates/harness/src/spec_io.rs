//! JSON (de)serialization of campaign specifications.
//!
//! The campaign service accepts [`CampaignSpec`]s over the wire, so the
//! declarative grid needs a canonical JSON form next to its Rust one.
//! The dialect is the workspace's usual hand-rolled one ([`crate::json`]):
//! objects with a fixed field order, integer-only numbers, no floats —
//! drop probabilities stay in per-mille, exactly as [`CampaignGrid`]
//! stores them.
//!
//! ```text
//! {"name":"smoke","grid":{"kind":"simthm","gammas":[4],"lengths":[9],"bandwidth":16}}
//! {"name":"loss","grid":{"kind":"chaos","nodes":12,"extra_edges":3,
//!                        "drop_pm":[0,250],"seeds":[1,2],"bandwidth":8}}
//! {"name":"gad","grid":{"kind":"gadgets","bit_sizes":[4,6],"seeds":[1],"bandwidth":32}}
//! ```
//!
//! [`spec_from_json`] is strict in the same sense as the record
//! validators: unknown or reordered fields are rejected, not ignored.
//! It checks *shape* only — semantic validation (empty axes, Γ = 0, …)
//! stays with [`CampaignSpec::validate`], so the service can map shape
//! errors and semantic errors to distinct structured responses.

use crate::json::{self, Json};
use crate::spec::{CampaignGrid, CampaignSpec};

fn num_array(items: &[u64]) -> Json {
    Json::Arr(items.iter().map(|&n| Json::Num(n)).collect())
}

fn usize_array(items: &[usize]) -> Json {
    Json::Arr(items.iter().map(|&n| Json::Num(n as u64)).collect())
}

/// Renders a spec in the canonical JSON form (stable field order,
/// integers only). [`spec_from_json`] accepts exactly this shape.
pub fn spec_to_json(spec: &CampaignSpec) -> Json {
    let grid = match &spec.grid {
        CampaignGrid::SimThm {
            gammas,
            lengths,
            bandwidth,
        } => Json::obj([
            ("kind", Json::Str("simthm".into())),
            ("gammas", usize_array(gammas)),
            ("lengths", usize_array(lengths)),
            ("bandwidth", Json::Num(*bandwidth as u64)),
        ]),
        CampaignGrid::Chaos {
            nodes,
            extra_edges,
            drop_pm,
            seeds,
            bandwidth,
        } => Json::obj([
            ("kind", Json::Str("chaos".into())),
            ("nodes", Json::Num(*nodes as u64)),
            ("extra_edges", Json::Num(*extra_edges as u64)),
            (
                "drop_pm",
                Json::Arr(drop_pm.iter().map(|&pm| Json::Num(u64::from(pm))).collect()),
            ),
            ("seeds", num_array(seeds)),
            ("bandwidth", Json::Num(*bandwidth as u64)),
        ]),
        CampaignGrid::Gadgets {
            bit_sizes,
            seeds,
            bandwidth,
        } => Json::obj([
            ("kind", Json::Str("gadgets".into())),
            ("bit_sizes", usize_array(bit_sizes)),
            ("seeds", num_array(seeds)),
            ("bandwidth", Json::Num(*bandwidth as u64)),
        ]),
        CampaignGrid::Ex11 {
            bits,
            bandwidths,
            distances,
        } => Json::obj([
            ("kind", Json::Str("ex11".into())),
            ("bits", usize_array(bits)),
            ("bandwidths", usize_array(bandwidths)),
            ("distances", usize_array(distances)),
        ]),
    };
    Json::obj([("name", Json::Str(spec.name.clone())), ("grid", grid)])
}

fn get_usize(doc: &Json, key: &str) -> Result<usize, String> {
    let n = doc
        .get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("`{key}` must be an unsigned integer"))?;
    usize::try_from(n).map_err(|_| format!("`{key}` is out of range"))
}

fn get_u64_array(doc: &Json, key: &str) -> Result<Vec<u64>, String> {
    let Some(Json::Arr(items)) = doc.get(key) else {
        return Err(format!("`{key}` must be an array"));
    };
    items
        .iter()
        .map(|v| {
            v.as_u64()
                .ok_or_else(|| format!("`{key}` must hold unsigned integers"))
        })
        .collect()
}

fn get_usize_array(doc: &Json, key: &str) -> Result<Vec<usize>, String> {
    get_u64_array(doc, key)?
        .into_iter()
        .map(|n| usize::try_from(n).map_err(|_| format!("`{key}` entry is out of range")))
        .collect()
}

/// Parses a spec from its canonical JSON form. Strict: the exact field
/// list in the exact order for the declared grid `kind`, integer-only
/// axes. Shape errors surface here as messages; semantic validation is
/// the caller's next step ([`CampaignSpec::validate`]).
pub fn spec_from_json(doc: &Json) -> Result<CampaignSpec, String> {
    json::require_keys(doc, &["name", "grid"], &[])?;
    let Some(Json::Str(name)) = doc.get("name") else {
        return Err("`name` must be a string".into());
    };
    let grid_doc = doc.get("grid").expect("checked above");
    let Some(Json::Str(kind)) = grid_doc.get("kind") else {
        return Err("`grid.kind` must be a string".into());
    };
    let grid = match kind.as_str() {
        "simthm" => {
            json::require_keys(grid_doc, &["kind", "gammas", "lengths", "bandwidth"], &[])
                .map_err(|e| format!("grid: {e}"))?;
            CampaignGrid::SimThm {
                gammas: get_usize_array(grid_doc, "gammas")?,
                lengths: get_usize_array(grid_doc, "lengths")?,
                bandwidth: get_usize(grid_doc, "bandwidth")?,
            }
        }
        "chaos" => {
            json::require_keys(
                grid_doc,
                &[
                    "kind",
                    "nodes",
                    "extra_edges",
                    "drop_pm",
                    "seeds",
                    "bandwidth",
                ],
                &[],
            )
            .map_err(|e| format!("grid: {e}"))?;
            CampaignGrid::Chaos {
                nodes: get_usize(grid_doc, "nodes")?,
                extra_edges: get_usize(grid_doc, "extra_edges")?,
                drop_pm: get_u64_array(grid_doc, "drop_pm")?
                    .into_iter()
                    .map(|pm| {
                        u32::try_from(pm).map_err(|_| "`drop_pm` entry is out of range".to_string())
                    })
                    .collect::<Result<_, _>>()?,
                seeds: get_u64_array(grid_doc, "seeds")?,
                bandwidth: get_usize(grid_doc, "bandwidth")?,
            }
        }
        "gadgets" => {
            json::require_keys(grid_doc, &["kind", "bit_sizes", "seeds", "bandwidth"], &[])
                .map_err(|e| format!("grid: {e}"))?;
            CampaignGrid::Gadgets {
                bit_sizes: get_usize_array(grid_doc, "bit_sizes")?,
                seeds: get_u64_array(grid_doc, "seeds")?,
                bandwidth: get_usize(grid_doc, "bandwidth")?,
            }
        }
        "ex11" => {
            json::require_keys(grid_doc, &["kind", "bits", "bandwidths", "distances"], &[])
                .map_err(|e| format!("grid: {e}"))?;
            CampaignGrid::Ex11 {
                bits: get_usize_array(grid_doc, "bits")?,
                bandwidths: get_usize_array(grid_doc, "bandwidths")?,
                distances: get_usize_array(grid_doc, "distances")?,
            }
        }
        other => return Err(format!("unknown grid kind `{other}`")),
    };
    Ok(CampaignSpec {
        name: name.clone(),
        grid,
    })
}

/// Parses a spec from JSON text (one document, no trailing garbage).
pub fn parse_spec(text: &str) -> Result<CampaignSpec, String> {
    spec_from_json(&json::parse(text)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{builtin, builtin_names};

    #[test]
    fn spec_io_round_trips_every_builtin() {
        for name in builtin_names() {
            let spec = builtin(name).expect("builtin");
            let text = spec_to_json(&spec).to_json();
            let back = parse_spec(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(back, spec, "{name} round-trips structurally");
            assert_eq!(
                spec_to_json(&back).to_json(),
                text,
                "{name} round-trips byte-exactly"
            );
        }
    }

    #[test]
    fn spec_io_parses_a_hand_written_chaos_grid() {
        let text = "{\"name\":\"loss\",\"grid\":{\"kind\":\"chaos\",\"nodes\":12,\
                    \"extra_edges\":3,\"drop_pm\":[0,250],\"seeds\":[1,2],\"bandwidth\":8}}";
        let spec = parse_spec(text).expect("parses");
        assert_eq!(spec.name, "loss");
        assert_eq!(
            spec.grid,
            CampaignGrid::Chaos {
                nodes: 12,
                extra_edges: 3,
                drop_pm: vec![0, 250],
                seeds: vec![1, 2],
                bandwidth: 8,
            }
        );
        spec.validate().expect("semantically valid too");
    }

    #[test]
    fn spec_io_rejects_malformed_documents() {
        for (bad, why) in [
            ("{}", "missing name"),
            ("{\"name\":\"x\"}", "missing grid"),
            (
                "{\"grid\":{\"kind\":\"simthm\"},\"name\":\"x\"}",
                "reordered fields",
            ),
            (
                "{\"name\":\"x\",\"grid\":{\"kind\":\"nope\"}}",
                "unknown grid kind",
            ),
            (
                "{\"name\":\"x\",\"grid\":{\"kind\":\"simthm\",\"gammas\":[4],\
                 \"lengths\":[9],\"bandwidth\":16,\"extra\":1}}",
                "unknown trailing field",
            ),
            (
                "{\"name\":\"x\",\"grid\":{\"kind\":\"simthm\",\"gammas\":[4.5],\
                 \"lengths\":[9],\"bandwidth\":16}}",
                "non-integer axis entry",
            ),
            (
                "{\"name\":\"x\",\"grid\":{\"kind\":\"chaos\",\"nodes\":12,\
                 \"extra_edges\":3,\"drop_pm\":0,\"seeds\":[1],\"bandwidth\":8}}",
                "scalar where an array is required",
            ),
            (
                "{\"name\":7,\"grid\":{\"kind\":\"gadgets\",\"bit_sizes\":[4],\
                 \"seeds\":[1],\"bandwidth\":32}}",
                "non-string name",
            ),
        ] {
            assert!(parse_spec(bad).is_err(), "should reject {why}: {bad}");
        }
    }

    #[test]
    fn spec_io_shape_check_leaves_semantics_to_validate() {
        // An empty axis is *shape-valid* JSON — the split of concerns
        // puts the semantic rejection in CampaignSpec::validate, so the
        // service can distinguish a 400 (bad shape) from a structured
        // CampaignError body.
        let text = "{\"name\":\"x\",\"grid\":{\"kind\":\"simthm\",\"gammas\":[],\
                    \"lengths\":[9],\"bandwidth\":16}}";
        let spec = parse_spec(text).expect("shape is fine");
        assert!(spec.validate().is_err(), "semantics are not");
    }
}
