//! The campaign runner: deterministic sharding, supervised worker
//! threads, order-independent aggregation, crash-safe journaling.
//!
//! # Determinism contract
//!
//! Running the same spec on 1 thread or N threads yields **byte-identical**
//! deterministic output:
//!
//! 1. [`CampaignSpec::points`](crate::CampaignSpec::points) expands the
//!    grid in a fixed order; a point's index is assigned *before*
//!    sharding.
//! 2. Workers pull indices from a shared dispenser. Which worker runs a
//!    point cannot change its result: every experiment is a pure
//!    function of its `PointSpec`.
//! 3. Results are committed through a reorder buffer in strict index
//!    order, so the record list — and the JSONL journal written from
//!    it — is in point order no matter which worker finished first.
//! 4. The aggregate folds only `u64` counters with commutative,
//!    associative operations (`+` and `max`), walking the table in index
//!    order. Even if the fold order changed, the result could not.
//!
//! The one thing that *does* vary between runs — wall-clock time — is
//! kept in dedicated fields (`wall_us` per record, `wall_ms` per
//! campaign) that the deterministic serializations omit.
//!
//! # Fault isolation and supervision
//!
//! Every point executes under [`std::panic::catch_unwind`], optionally
//! bounded by a wall-clock deadline
//! ([`RunOptions::point_deadline_ms`]). A panic, a structured
//! [`SimError`](qdc_congest::SimError), or a deadline overrun becomes a
//! [`PointFailure`]; transient kinds (watchdog trips, generic panics,
//! deadlines — see [`SimError::is_retryable`](qdc_congest::SimError::is_retryable))
//! are retried up to [`RunOptions::max_attempts`] with deterministic
//! seeded backoff before the failure is committed as a
//! `qdc-campaign-failure/v1` record in the failed point's index slot.
//! The rest of the grid always keeps running: one poisoned cell cannot
//! discard a campaign. A worker thread that dies anyway is survived by
//! an orphan sweep that re-executes whatever the lost worker never
//! reported.
//!
//! # Crash-safe journaling and resume
//!
//! [`run_campaign_journaled`] streams each committed point through
//! [`Journal::append_line`](crate::journal::Journal::append_line)
//! (single-write + fsync per line) instead of holding the campaign in
//! memory, and on resume replays the surviving journal prefix via
//! [`journal::recover`](crate::journal::recover) before executing only
//! the missing tail. Cancellation ([`CancelToken`]) drains in-flight
//! points, commits the contiguous prefix, and reports
//! `interrupted: true` — the journal is always resumable.

use crate::journal::{self, Journal, RecoveredEntry};
use crate::json::Json;
use crate::point::{
    execute_point_sharded, failure_json, record_json, PointFailure, PointRecord, TelemetryMode,
};
use crate::spec::{CampaignError, CampaignSpec, PointSpec, CAMPAIGN_SCHEMA};
use qdc_congest::{RunMetrics, TelemetryReport, TrafficTrace};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

/// How to run a campaign.
#[derive(Clone, Debug)]
pub struct RunOptions {
    /// Worker thread count (must be ≥ 1).
    pub threads: usize,
    /// Whether to keep per-point traffic traces in the outcome (they
    /// can be large; the CLI only asks for them when archiving).
    pub keep_traces: bool,
    /// How each point is observed: [`TelemetryMode::Off`] (the default
    /// — the null-sink path is the zero-overhead one),
    /// [`TelemetryMode::Exact`] (buffered [`TelemetryReport`] per
    /// point), or [`TelemetryMode::Stream`] (O(1)-memory sink writing
    /// each point's `qdc-telemetry-stream/v1` archive incrementally
    /// during the run — the workers write the files themselves, so the
    /// committer has nothing to archive and the outcome's `telemetry`
    /// slots stay `None`).
    pub telemetry: TelemetryMode,
    /// Worker thread count for each point's *round engine* (the
    /// simulator's compute phase), as distinct from `threads`, which
    /// shards whole points. Both levels carry the same byte-identical
    /// determinism contract, so any combination is safe. Must be ≥ 1.
    pub sim_threads: usize,
    /// Attempt budget per point (must be ≥ 1; the first try counts).
    /// Only *retryable* failures consume extra attempts — permanent
    /// protocol violations are committed after the first.
    pub max_attempts: u32,
    /// Seed of the deterministic retry backoff schedule. The delay
    /// before attempt `a` of point `i` is a pure function of
    /// `(backoff_seed, i, a)` — never of the wall clock — so two runs
    /// of the same spec retry on the same schedule.
    pub backoff_seed: u64,
    /// Wall-clock deadline per attempt, in milliseconds. `None` (the
    /// default) runs attempts inline with no timer; `Some(ms)` runs
    /// each attempt on a watchdog thread and records a `"deadline"`
    /// failure if it does not finish in time. Deadlines are inherently
    /// wall-clock: enabling them steps outside the byte-identical
    /// determinism contract.
    pub point_deadline_ms: Option<u64>,
    /// Testing aid: sleep this many milliseconds before each point so
    /// interruption tests (and the CI kill-and-resume job) can reliably
    /// land a signal mid-grid. `0` (the default) adds nothing.
    pub throttle_ms: u64,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            threads: 1,
            keep_traces: false,
            telemetry: TelemetryMode::Off,
            sim_threads: 1,
            max_attempts: 1,
            backoff_seed: 0,
            point_deadline_ms: None,
            throttle_ms: 0,
        }
    }
}

/// Cooperative cancellation handle for graceful shutdown: signal
/// handlers (or tests) call [`cancel`](CancelToken::cancel); workers
/// stop pulling new points, finish the ones in flight, and the
/// committer flushes the contiguous prefix to the journal before the
/// runner returns with `interrupted: true`.
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Requests shutdown. Safe to call from a signal handler (a single
    /// atomic store) and idempotent.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// Whether shutdown has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// Order-independent fold of every committed point's counters. All
/// fields are `u64` and folded with `+`/`max` only, so the result
/// cannot depend on evaluation order — see the module docs.
///
/// `points` counts every committed outcome (records *and* failures), so
/// `ok + errors + points_failed == points` always holds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Aggregate {
    /// Total points committed (successful records plus failures).
    pub points: u64,
    /// Points that finished without a structured error.
    pub ok: u64,
    /// Points whose record carries a (legacy) error string. Freshly
    /// written records never do — structured errors become failure
    /// records — but recovered pre-failure-schema journals may.
    pub errors: u64,
    /// Points whose verdict was accept.
    pub accepted: u64,
    /// Points whose verdict was reject.
    pub rejected: u64,
    /// Sum of rounds across all points.
    pub rounds: u64,
    /// Sum of messages across all points.
    pub messages: u64,
    /// Sum of payload bits across all points.
    pub bits: u64,
    /// Max single-round bit volume seen by any point.
    pub max_bits_per_round: u64,
    /// Sum of dropped messages (fault injection).
    pub dropped: u64,
    /// Sum of crashed nodes (fault injection).
    pub crashed: u64,
    /// Sum of corrupted payloads (fault injection).
    pub corrupted: u64,
    /// Points whose every attempt failed (each has a
    /// `qdc-campaign-failure/v1` record in the journal).
    pub points_failed: u64,
    /// Total extra attempts spent on failed points (`Σ attempts − 1`
    /// over failure records). A point that failed transiently and then
    /// succeeded is *not* counted: under the determinism contract a
    /// success always takes one attempt, and counting only journaled
    /// attempts keeps a resumed aggregate identical to a live one.
    pub points_retried: u64,
}

impl Aggregate {
    /// Folds one successful point into the counters.
    pub fn add_point(&mut self, metrics: &RunMetrics, accept: Option<bool>, errored: bool) {
        self.points += 1;
        if errored {
            self.errors += 1;
        } else {
            self.ok += 1;
        }
        match accept {
            Some(true) => self.accepted += 1,
            Some(false) => self.rejected += 1,
            None => {}
        }
        self.rounds += metrics.rounds;
        self.messages += metrics.messages_sent;
        self.bits += metrics.bits_sent;
        self.max_bits_per_round = self.max_bits_per_round.max(metrics.max_bits_per_round);
        self.dropped += metrics.messages_dropped;
        self.crashed += metrics.nodes_crashed;
        self.corrupted += metrics.bits_corrupted;
    }

    /// Folds one journaled failure into the counters.
    pub fn add_failure(&mut self, attempts: u64) {
        self.points += 1;
        self.points_failed += 1;
        self.points_retried += attempts.saturating_sub(1);
    }

    /// Folds one recovered journal entry into the counters.
    pub fn add_entry(&mut self, entry: &RecoveredEntry) {
        match entry {
            RecoveredEntry::Point {
                metrics,
                accept,
                errored,
            } => self.add_point(metrics, *accept, *errored),
            RecoveredEntry::Failure { attempts } => self.add_failure(*attempts),
        }
    }

    /// Folds a record list (in any order — the result is the same).
    pub fn fold(records: &[PointRecord]) -> Aggregate {
        Aggregate::fold_full(records, &[])
    }

    /// Folds records and failures together (in any order).
    pub fn fold_full(records: &[PointRecord], failures: &[PointFailure]) -> Aggregate {
        let mut agg = Aggregate::default();
        for rec in records {
            agg.add_point(&rec.metrics, rec.accept, rec.error.is_some());
        }
        for f in failures {
            agg.add_failure(u64::from(f.attempts));
        }
        agg
    }

    /// Canonical JSON form (stable field order, integers only).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("points", Json::Num(self.points)),
            ("ok", Json::Num(self.ok)),
            ("errors", Json::Num(self.errors)),
            ("accepted", Json::Num(self.accepted)),
            ("rejected", Json::Num(self.rejected)),
            ("rounds", Json::Num(self.rounds)),
            ("messages", Json::Num(self.messages)),
            ("bits", Json::Num(self.bits)),
            ("max_bits_per_round", Json::Num(self.max_bits_per_round)),
            ("dropped", Json::Num(self.dropped)),
            ("crashed", Json::Num(self.crashed)),
            ("corrupted", Json::Num(self.corrupted)),
            ("points_failed", Json::Num(self.points_failed)),
            ("points_retried", Json::Num(self.points_retried)),
        ])
    }
}

/// Everything one in-memory campaign run produced.
#[derive(Clone, Debug)]
pub struct CampaignOutcome {
    /// The campaign's name (copied from the spec).
    pub spec_name: String,
    /// Per-point records of the successful points, in point-index order
    /// (each carries its own `index`; failed indices are absent here and
    /// present in `failures` instead).
    pub records: Vec<PointRecord>,
    /// Failures of the points whose every attempt failed, in
    /// point-index order.
    pub failures: Vec<PointFailure>,
    /// Per-point traffic traces, indexed by grid point (`None` for
    /// untraced kinds, failed points, or when `keep_traces` was off).
    pub traces: Vec<Option<TrafficTrace>>,
    /// Per-point telemetry profiles, indexed by grid point (`None` for
    /// unprofiled kinds, failed points, streamed runs — whose archives
    /// live on disk, not in memory — or when [`TelemetryMode::Off`] was
    /// off).
    pub telemetry: Vec<Option<TelemetryReport>>,
    /// The order-independent fold of `records` and `failures`.
    pub aggregate: Aggregate,
    /// Wall-clock time of the whole campaign in milliseconds.
    /// Excluded from the determinism contract.
    pub wall_ms: u64,
    /// Thread count the campaign ran with.
    pub threads: usize,
}

impl CampaignOutcome {
    /// The deterministic portion of the run as JSONL: one line per grid
    /// point in index order — a `qdc-campaign-point/v1` record for each
    /// success, a `qdc-campaign-failure/v1` record for each failure —
    /// without wall-clock fields. Two runs of the same spec agree on
    /// this string byte for byte regardless of thread count, and a
    /// journaled `--deterministic` run's file holds exactly these bytes.
    pub fn deterministic_jsonl(&self) -> String {
        let mut out = String::new();
        let mut records = self.records.iter().peekable();
        let mut failures = self.failures.iter().peekable();
        loop {
            let take_record = match (records.peek(), failures.peek()) {
                (Some(r), Some(f)) => r.index < f.index,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            if take_record {
                let rec = records.next().expect("peeked");
                out.push_str(&record_json(&self.spec_name, rec, false));
            } else {
                let f = failures.next().expect("peeked");
                out.push_str(&failure_json(&self.spec_name, f));
            }
            out.push('\n');
        }
        out
    }
}

/// Renders the campaign summary document (`BENCH_<name>.json` shape).
/// The `aggregate` object inside it is the byte-identical part; the
/// `threads` and `wall_ms` fields describe this particular run.
pub fn summary_json(outcome: &CampaignOutcome) -> String {
    summary_doc(
        &outcome.spec_name,
        outcome.threads,
        outcome.wall_ms,
        &outcome.aggregate,
        false,
    )
}

/// Renders the summary of a journaled run. An interrupted run's summary
/// carries a trailing `"interrupted": true` marker so downstream
/// tooling can tell a resumable partial summary from a complete one.
pub fn journal_summary_json(outcome: &JournalOutcome) -> String {
    summary_doc(
        &outcome.spec_name,
        outcome.threads,
        outcome.wall_ms,
        &outcome.aggregate,
        outcome.interrupted,
    )
}

fn summary_doc(
    campaign: &str,
    threads: usize,
    wall_ms: u64,
    aggregate: &Aggregate,
    interrupted: bool,
) -> String {
    let mut fields = vec![
        ("schema".to_string(), Json::Str(CAMPAIGN_SCHEMA.to_string())),
        ("campaign".to_string(), Json::Str(campaign.to_string())),
        ("threads".to_string(), Json::Num(threads as u64)),
        ("wall_ms".to_string(), Json::Num(wall_ms)),
        ("aggregate".to_string(), aggregate.to_json()),
    ];
    if interrupted {
        fields.push(("interrupted".to_string(), Json::Bool(true)));
    }
    Json::Obj(fields).to_json()
}

/// Strict conformance check for one `qdc-campaign/v1` summary document:
/// the exact field list in the exact order, the schema tag, and an
/// integer-only aggregate with the exact counter list. The one optional
/// field is a trailing boolean `interrupted` marker (present only on
/// the partial summary of an interrupted journaled run). A trailing
/// newline (as written by the campaign binary) is accepted.
pub fn validate_summary(text: &str) -> Result<(), String> {
    let doc = crate::json::parse(text.strip_suffix('\n').unwrap_or(text))?;
    crate::json::require_keys(
        &doc,
        &["schema", "campaign", "threads", "wall_ms", "aggregate"],
        &["interrupted"],
    )?;
    match doc.get("schema") {
        Some(Json::Str(s)) if s == CAMPAIGN_SCHEMA => {}
        _ => return Err(format!("schema tag must be `{CAMPAIGN_SCHEMA}`")),
    }
    if !matches!(doc.get("campaign"), Some(Json::Str(_))) {
        return Err("`campaign` must be a string".into());
    }
    for key in ["threads", "wall_ms"] {
        if doc.get(key).and_then(Json::as_u64).is_none() {
            return Err(format!("`{key}` must be an unsigned integer"));
        }
    }
    if let Some(marker) = doc.get("interrupted") {
        if !matches!(marker, Json::Bool(_)) {
            return Err("`interrupted` must be a boolean".into());
        }
    }
    let agg = doc.get("aggregate").expect("checked above");
    crate::json::require_keys(
        agg,
        &[
            "points",
            "ok",
            "errors",
            "accepted",
            "rejected",
            "rounds",
            "messages",
            "bits",
            "max_bits_per_round",
            "dropped",
            "crashed",
            "corrupted",
            "points_failed",
            "points_retried",
        ],
        &[],
    )
    .map_err(|e| format!("aggregate: {e}"))?;
    if let Json::Obj(fields) = agg {
        for (k, v) in fields {
            if v.as_u64().is_none() {
                return Err(format!(
                    "aggregate counter `{k}` must be an unsigned integer"
                ));
            }
        }
    }
    Ok(())
}

/// One point's fully executed slot: the record plus its optional
/// archives.
type Slot = (PointRecord, Option<TrafficTrace>, Option<TelemetryReport>);

/// What the supervisor ultimately committed for one point.
enum PointOutcome {
    /// All good (possibly after retries).
    Done(Box<Slot>),
    /// Every allowed attempt failed.
    Failed(PointFailure),
}

/// SplitMix64 — the tiny seeded mixer behind the deterministic backoff
/// jitter (no wall-clock, no global RNG state).
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic backoff before retry attempt `attempt + 1` of point
/// `index`: exponential base (25 ms doubling per attempt) plus seeded
/// jitter, capped at 250 ms. A pure function of its arguments.
fn backoff_ms(seed: u64, index: usize, attempt: u32) -> u64 {
    let base = 25u64 << (attempt.min(4) - 1);
    let jitter =
        splitmix64(seed ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ u64::from(attempt))
            % 25;
    (base + jitter).min(250)
}

/// One attempt under `catch_unwind`: a panic anywhere inside the point
/// (simulator budget assertions included) becomes a classified
/// [`PointFailure`] instead of unwinding into the worker loop.
fn guarded_attempt(
    index: usize,
    point: &PointSpec,
    telemetry: &TelemetryMode,
    sim: qdc_congest::RunOptions,
) -> Result<Slot, PointFailure> {
    match catch_unwind(AssertUnwindSafe(|| {
        execute_point_sharded(index, point, telemetry, sim)
    })) {
        Ok(result) => result,
        Err(payload) => Err(PointFailure::from_panic(index, payload.as_ref())),
    }
}

/// One attempt, with the optional wall-clock deadline layered on top:
/// the attempt runs on a dedicated thread and is abandoned (left to
/// finish into a dropped channel) if it misses the deadline.
fn run_attempt(
    index: usize,
    point: &PointSpec,
    options: &RunOptions,
) -> Result<Slot, PointFailure> {
    let sim = qdc_congest::RunOptions {
        threads: options.sim_threads,
    };
    match options.point_deadline_ms {
        None => guarded_attempt(index, point, &options.telemetry, sim),
        Some(deadline_ms) => {
            let (tx, rx) = mpsc::channel();
            let point = point.clone();
            let telemetry = options.telemetry.clone();
            std::thread::spawn(move || {
                let _ = tx.send(guarded_attempt(index, &point, &telemetry, sim));
            });
            match rx.recv_timeout(Duration::from_millis(deadline_ms)) {
                Ok(result) => result,
                Err(_) => Err(PointFailure::deadline(index, deadline_ms)),
            }
        }
    }
}

/// The per-point supervisor: attempt, classify, maybe back off and
/// retry, and stamp the final attempt count into the failure.
fn supervised_execute(index: usize, point: &PointSpec, options: &RunOptions) -> PointOutcome {
    let mut attempt = 1u32;
    loop {
        match run_attempt(index, point, options) {
            Ok(slot) => return PointOutcome::Done(Box::new(slot)),
            Err(mut failure) => {
                failure.attempts = attempt;
                if failure.retryable && attempt < options.max_attempts {
                    std::thread::sleep(Duration::from_millis(backoff_ms(
                        options.backoff_seed,
                        index,
                        attempt,
                    )));
                    attempt += 1;
                } else {
                    return PointOutcome::Failed(failure);
                }
            }
        }
    }
}

/// How an [`execute_grid`] run ended.
struct ExecStatus {
    /// Whether cancellation stopped the run short of the full grid.
    interrupted: bool,
    /// Points committed by this run (excludes recovered ones).
    executed: usize,
}

/// The shared execution engine: dispense indices to supervised workers,
/// reorder completions, and hand each outcome to `commit` in strict
/// index order starting at `start_at`. `commit` failing (an I/O error
/// from the journal) cancels the run and surfaces the error.
fn execute_grid<F>(
    points: &[PointSpec],
    start_at: usize,
    options: &RunOptions,
    cancel: &CancelToken,
    mut commit: F,
) -> std::io::Result<ExecStatus>
where
    F: FnMut(usize, PointOutcome) -> std::io::Result<()>,
{
    let total = points.len();
    let mut committed = start_at.min(total);
    if committed < total {
        let threads = options.threads.min(total - committed).max(1);
        let next = AtomicUsize::new(committed);
        let mut buffer: BTreeMap<usize, PointOutcome> = BTreeMap::new();
        let mut commit_err: Option<std::io::Error> = None;
        std::thread::scope(|scope| {
            let (tx, rx) = mpsc::channel::<(usize, PointOutcome)>();
            let mut handles = Vec::with_capacity(threads);
            for _ in 0..threads {
                let tx = tx.clone();
                let next = &next;
                handles.push(scope.spawn(move || {
                    // Graceful drain on cancellation: the cancel check
                    // sits *before* the dispenser, so a point already
                    // taken is always finished and reported.
                    loop {
                        if cancel.is_cancelled() {
                            break;
                        }
                        let i = next.fetch_add(1, Ordering::SeqCst);
                        if i >= total {
                            break;
                        }
                        if options.throttle_ms > 0 {
                            std::thread::sleep(Duration::from_millis(options.throttle_ms));
                        }
                        let out = supervised_execute(i, &points[i], options);
                        if tx.send((i, out)).is_err() {
                            break;
                        }
                    }
                }));
            }
            drop(tx);
            // Committer: workers finish out of order; the journal
            // contract wants strict index order, so buffer and commit
            // the contiguous prefix only.
            while let Ok((i, out)) = rx.recv() {
                buffer.insert(i, out);
                while let Some(out) = buffer.remove(&committed) {
                    if let Err(e) = commit(committed, out) {
                        commit_err = Some(e);
                        cancel.cancel();
                        break;
                    }
                    committed += 1;
                }
                if commit_err.is_some() {
                    break;
                }
            }
            for h in handles {
                // catch_unwind contains point panics, so workers do not
                // normally die; if one does anyway, its lost work is
                // re-executed by the orphan sweep below — joining here
                // only reaps the thread.
                let _ = h.join();
            }
        });
        if let Some(e) = commit_err {
            return Err(e);
        }
        // Orphan sweep: commit whatever the reorder buffer still holds
        // and re-execute (inline, in index order) any index a dead
        // worker took but never reported.
        while !cancel.is_cancelled() && committed < total {
            let out = match buffer.remove(&committed) {
                Some(out) => out,
                None => supervised_execute(committed, &points[committed], options),
            };
            commit(committed, out)?;
            committed += 1;
        }
    }
    Ok(ExecStatus {
        interrupted: committed < total,
        executed: committed - start_at.min(total),
    })
}

fn validate_options(options: &RunOptions) -> Result<(), CampaignError> {
    if options.threads == 0 || options.sim_threads == 0 {
        return Err(CampaignError::ZeroThreads);
    }
    if options.max_attempts == 0 {
        return Err(CampaignError::ZeroAttempts);
    }
    Ok(())
}

/// Validates, expands, shards and runs a campaign, collecting
/// everything in memory.
///
/// Point failures do not abort the run: they are isolated, retried
/// within the attempt budget, and collected into
/// [`CampaignOutcome::failures`]. For crash-safe streaming execution
/// use [`run_campaign_journaled`].
pub fn run_campaign(
    spec: &CampaignSpec,
    options: &RunOptions,
) -> Result<CampaignOutcome, CampaignError> {
    validate_options(options)?;
    spec.validate()?;
    let points = spec.points();
    let start = std::time::Instant::now();

    let mut records = Vec::with_capacity(points.len());
    let mut failures = Vec::new();
    let mut traces: Vec<Option<TrafficTrace>> = Vec::new();
    traces.resize_with(points.len(), || None);
    let mut telemetry: Vec<Option<TelemetryReport>> = Vec::new();
    telemetry.resize_with(points.len(), || None);

    let cancel = CancelToken::new();
    execute_grid(&points, 0, options, &cancel, |i, out| {
        match out {
            PointOutcome::Done(slot) => {
                let (rec, trace, profile) = *slot;
                if options.keep_traces {
                    traces[i] = trace;
                }
                telemetry[i] = profile;
                records.push(rec);
            }
            PointOutcome::Failed(f) => failures.push(f),
        }
        Ok(())
    })
    .expect("in-memory commit is infallible");

    let aggregate = Aggregate::fold_full(&records, &failures);
    Ok(CampaignOutcome {
        spec_name: spec.name.clone(),
        records,
        failures,
        traces,
        telemetry,
        aggregate,
        wall_ms: start.elapsed().as_millis() as u64,
        threads: options.threads,
    })
}

/// Where and how a journaled run persists its output.
#[derive(Clone, Debug, Default)]
pub struct JournalConfig {
    /// The journal path — the campaign's JSONL output file.
    pub out_path: String,
    /// Archive each traced point as `<dir>/point_<i>.trace.jsonl`.
    pub trace_dir: Option<String>,
    /// Archive each profiled point as `<dir>/point_<i>.telemetry.jsonl`.
    pub telemetry_dir: Option<String>,
    /// Recover an existing journal at `out_path` and resume at the
    /// first missing index instead of starting over. A missing file
    /// resumes from zero (resuming a campaign that never started is
    /// just starting it).
    pub resume: bool,
    /// Include the volatile wall-clock fields in records and telemetry
    /// archives. `false` is the byte-identical deterministic form.
    pub with_wall: bool,
}

/// Why a journaled campaign run failed (beyond ordinary point failures,
/// which are journaled, not raised).
#[derive(Debug)]
pub enum CampaignRunError {
    /// The spec or the run options were rejected up front.
    Spec(CampaignError),
    /// The journal or an archive could not be read or written.
    Io(std::io::Error),
    /// The existing journal is not a recoverable prefix of this
    /// campaign (wrong campaign, or more records than the grid has
    /// points).
    Corrupt(String),
}

impl std::fmt::Display for CampaignRunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignRunError::Spec(e) => write!(f, "{e}"),
            CampaignRunError::Io(e) => write!(f, "journal I/O failed: {e}"),
            CampaignRunError::Corrupt(msg) => write!(f, "corrupt journal: {msg}"),
        }
    }
}

impl std::error::Error for CampaignRunError {}

impl From<CampaignError> for CampaignRunError {
    fn from(e: CampaignError) -> Self {
        CampaignRunError::Spec(e)
    }
}

impl From<std::io::Error> for CampaignRunError {
    fn from(e: std::io::Error) -> Self {
        CampaignRunError::Io(e)
    }
}

/// What a journaled run reports back (the records themselves live in
/// the journal file, not in memory — journaled campaigns stream).
#[derive(Clone, Debug)]
pub struct JournalOutcome {
    /// The campaign's name (copied from the spec).
    pub spec_name: String,
    /// Size of the expanded grid.
    pub total_points: usize,
    /// Points recovered from an existing journal (0 for fresh runs).
    pub recovered: usize,
    /// Points executed and committed by *this* run.
    pub executed: usize,
    /// The fold of every committed point — recovered and fresh alike.
    pub aggregate: Aggregate,
    /// Whether cancellation stopped the run before the grid finished.
    /// The journal is resumable either way; an interrupted summary is
    /// marked (see [`journal_summary_json`]).
    pub interrupted: bool,
    /// Wall-clock time of this run in milliseconds (excluded from the
    /// determinism contract).
    pub wall_ms: u64,
    /// Thread count the run used.
    pub threads: usize,
}

/// Runs a campaign with crash-safe journaling: every committed point is
/// durably appended to `config.out_path` (fsync per line) the moment
/// its index is reached, archives land *before* their journal line, and
/// `config.resume` recovers an interrupted journal and executes only
/// the missing tail — byte-identical (in the deterministic form) to an
/// uninterrupted run at any thread count.
pub fn run_campaign_journaled(
    spec: &CampaignSpec,
    options: &RunOptions,
    config: &JournalConfig,
    cancel: &CancelToken,
) -> Result<JournalOutcome, CampaignRunError> {
    validate_options(options)?;
    spec.validate().map_err(CampaignRunError::Spec)?;
    let points = spec.points();
    let start = std::time::Instant::now();

    let mut aggregate = Aggregate::default();
    let mut recovered = 0usize;
    if config.resume {
        let text = match std::fs::read_to_string(&config.out_path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
            Err(e) => return Err(CampaignRunError::Io(e)),
        };
        let recovery = journal::recover(&text, &spec.name).map_err(CampaignRunError::Corrupt)?;
        if recovery.entries.len() > points.len() {
            return Err(CampaignRunError::Corrupt(format!(
                "journal holds {} records but the grid has only {} points",
                recovery.entries.len(),
                points.len()
            )));
        }
        if recovery.truncated_bytes > 0 {
            // Drop the torn tail on its record-boundary fence before
            // appending; the truncated point re-runs below.
            let file = std::fs::OpenOptions::new()
                .write(true)
                .open(&config.out_path)?;
            file.set_len(recovery.kept_bytes as u64)?;
            file.sync_all()?;
        }
        for entry in &recovery.entries {
            aggregate.add_entry(entry);
        }
        recovered = recovery.entries.len();
    }

    let mut journal = if config.resume {
        Journal::append(&config.out_path)
    } else {
        Journal::create(&config.out_path)
    }?;
    if let Some(dir) = &config.trace_dir {
        std::fs::create_dir_all(dir)?;
    }
    if let Some(dir) = &config.telemetry_dir {
        std::fs::create_dir_all(dir)?;
    }

    let status = execute_grid(&points, recovered, options, cancel, |i, out| {
        match out {
            PointOutcome::Done(slot) => {
                let (rec, trace, profile) = &*slot;
                // Archives land before the journal line: a journaled
                // record implies its archives exist, and a crash in the
                // gap simply re-runs the point into identical bytes.
                if let (Some(dir), Some(trace)) = (&config.trace_dir, trace) {
                    std::fs::write(format!("{dir}/point_{i}.trace.jsonl"), trace.to_jsonl())?;
                }
                if let (Some(dir), Some(profile)) = (&config.telemetry_dir, profile) {
                    std::fs::write(
                        format!("{dir}/point_{i}.telemetry.jsonl"),
                        profile.to_jsonl(config.with_wall),
                    )?;
                }
                journal.append_line(&record_json(&spec.name, rec, config.with_wall))?;
                aggregate.add_point(&rec.metrics, rec.accept, rec.error.is_some());
            }
            PointOutcome::Failed(f) => {
                journal.append_line(&failure_json(&spec.name, &f))?;
                aggregate.add_failure(u64::from(f.attempts));
            }
        }
        Ok(())
    })?;
    journal.sync_all()?;

    Ok(JournalOutcome {
        spec_name: spec.name.clone(),
        total_points: points.len(),
        recovered,
        executed: status.executed,
        aggregate,
        interrupted: status.interrupted,
        wall_ms: start.elapsed().as_millis() as u64,
        threads: options.threads,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use crate::spec::{builtin, CampaignGrid};

    fn opts(threads: usize) -> RunOptions {
        RunOptions {
            threads,
            ..RunOptions::default()
        }
    }

    #[test]
    fn runner_rejects_zero_threads_and_zero_attempts() {
        let spec = builtin("simthm_smoke").expect("builtin");
        let err = run_campaign(&spec, &opts(0)).expect_err("zero threads is invalid");
        assert_eq!(err, CampaignError::ZeroThreads);
        let err = run_campaign(
            &spec,
            &RunOptions {
                max_attempts: 0,
                ..RunOptions::default()
            },
        )
        .expect_err("zero attempts is invalid");
        assert_eq!(err, CampaignError::ZeroAttempts);
    }

    #[test]
    fn runner_one_and_four_threads_agree_byte_for_byte() {
        let spec = builtin("simthm_smoke").expect("builtin");
        let one = run_campaign(&spec, &opts(1)).expect("runs");
        let four = run_campaign(&spec, &opts(4)).expect("runs");
        assert_eq!(one.deterministic_jsonl(), four.deterministic_jsonl());
        assert_eq!(one.aggregate, four.aggregate);
        assert_eq!(
            one.aggregate.to_json().to_json(),
            four.aggregate.to_json().to_json()
        );
    }

    #[test]
    fn runner_records_are_in_point_order_with_complete_coverage() {
        let spec = builtin("simthm_smoke").expect("builtin");
        let out = run_campaign(
            &spec,
            &RunOptions {
                threads: 3,
                keep_traces: true,
                ..RunOptions::default()
            },
        )
        .expect("runs");
        assert_eq!(out.records.len(), spec.points().len());
        for (i, rec) in out.records.iter().enumerate() {
            assert_eq!(rec.index, i);
        }
        assert!(out.failures.is_empty());
        assert_eq!(out.traces.len(), out.records.len());
        assert!(
            out.traces.iter().all(Option::is_some),
            "simthm runs are traced"
        );
        assert_eq!(out.aggregate.points, out.records.len() as u64);
        assert_eq!(out.aggregate.accepted, out.records.len() as u64);
        assert_eq!(out.aggregate.errors, 0);
        assert_eq!(out.aggregate.points_failed, 0);
    }

    #[test]
    fn runner_aggregate_fold_is_order_independent() {
        let spec = builtin("gadget_sweep").expect("builtin");
        let out = run_campaign(&spec, &opts(2)).expect("runs");
        let mut reversed = out.records.clone();
        reversed.reverse();
        assert_eq!(Aggregate::fold(&reversed), out.aggregate);
    }

    #[test]
    fn runner_summary_parses_and_carries_the_aggregate() {
        let spec = builtin("simthm_smoke").expect("builtin");
        let out = run_campaign(&spec, &RunOptions::default()).expect("runs");
        let doc = json::parse(&summary_json(&out)).expect("summary is valid JSON");
        assert_eq!(
            doc.get("schema"),
            Some(&Json::Str(CAMPAIGN_SCHEMA.to_string()))
        );
        let agg = doc.get("aggregate").expect("aggregate present");
        assert_eq!(
            agg.get("points").and_then(Json::as_u64),
            Some(out.aggregate.points)
        );
        assert_eq!(agg.get("errors").and_then(Json::as_u64), Some(0));
        assert_eq!(agg.get("points_failed").and_then(Json::as_u64), Some(0));
    }

    #[test]
    fn runner_exact_telemetry_profiles_points_without_perturbing_records() {
        let spec = builtin("telemetry_smoke").expect("builtin");
        let plain = run_campaign(&spec, &RunOptions::default()).expect("runs");
        let observed = run_campaign(
            &spec,
            &RunOptions {
                threads: 2,
                telemetry: TelemetryMode::Exact,
                ..RunOptions::default()
            },
        )
        .expect("runs");
        // Observation never perturbs the deterministic output.
        assert_eq!(plain.deterministic_jsonl(), observed.deterministic_jsonl());
        assert!(plain.telemetry.iter().all(Option::is_none));
        assert_eq!(observed.telemetry.len(), observed.records.len());
        for (rec, profile) in observed.records.iter().zip(&observed.telemetry) {
            let profile = profile.as_ref().expect("simthm points are profiled");
            assert_eq!(profile.total_messages(), rec.metrics.messages_sent);
            assert_eq!(profile.total_bits(), rec.metrics.bits_sent);
            assert_eq!(profile.rounds.len() as u64, rec.metrics.rounds);
        }
    }

    #[test]
    fn runner_summary_validator_accepts_real_output_and_rejects_mutants() {
        let spec = builtin("telemetry_smoke").expect("builtin");
        let out = run_campaign(&spec, &RunOptions::default()).expect("runs");
        let summary = summary_json(&out);
        validate_summary(&summary).expect("real summary conforms");
        validate_summary(&format!("{summary}\n")).expect("trailing newline is fine");
        for (broken, why) in [
            (
                summary.replace("qdc-campaign/v1", "qdc-campaign/v0"),
                "wrong schema tag",
            ),
            (
                summary.replace("\"points\"", "\"pts\""),
                "unknown aggregate key",
            ),
            (
                summary.replace("\"wall_ms\"", "\"wall_us\""),
                "wrong field name",
            ),
            (
                summary.replace("{\"schema\"", "{\"campaign\":\"x\",\"schema\""),
                "reordered fields",
            ),
        ] {
            assert!(validate_summary(&broken).is_err(), "should reject {why}");
        }
        // Every record line passes the strict line validator too.
        for line in out.deterministic_jsonl().lines() {
            crate::point::validate_record_line(line).expect("record line conforms");
        }
    }

    #[test]
    fn runner_summary_validator_accepts_the_interrupted_marker() {
        let spec = builtin("simthm_smoke").expect("builtin");
        let out = run_campaign(&spec, &RunOptions::default()).expect("runs");
        let partial = JournalOutcome {
            spec_name: out.spec_name.clone(),
            total_points: 4,
            recovered: 0,
            executed: 2,
            aggregate: out.aggregate,
            interrupted: true,
            wall_ms: 3,
            threads: 1,
        };
        let summary = journal_summary_json(&partial);
        assert!(summary.ends_with("\"interrupted\":true}"));
        validate_summary(&summary).expect("interrupted summary conforms");
        assert!(
            validate_summary(&summary.replace("\"interrupted\":true", "\"interrupted\":1"))
                .is_err(),
            "non-boolean marker is rejected"
        );
    }

    #[test]
    fn runner_chaos_ensemble_runs_under_faults() {
        // A trimmed chaos grid (the builtin's shape, fewer seeds) to keep
        // unit-test wall time down while still exercising the fallible path.
        let spec = CampaignSpec {
            name: "chaos_mini".into(),
            grid: CampaignGrid::Chaos {
                nodes: 12,
                extra_edges: 3,
                drop_pm: vec![0, 250],
                seeds: vec![1, 2],
                bandwidth: 8,
            },
        };
        let out = run_campaign(&spec, &opts(2)).expect("runs");
        assert_eq!(out.aggregate.points, 4);
        assert_eq!(out.aggregate.errors, 0);
        assert_eq!(out.aggregate.points_failed, 0);
        assert_eq!(
            out.aggregate.accepted, 4,
            "robust broadcast should inform everyone"
        );
        assert!(
            out.aggregate.dropped > 0,
            "the lossy half must drop messages"
        );
    }

    #[test]
    fn runner_panicking_points_become_failure_records_and_grid_continues() {
        // B = 1 passes gadget validation but the verifier's id-width
        // messages cannot fit, so every point panics inside the
        // algorithm layer. The grid must commit a failure record per
        // index and keep going — never abort.
        let spec = CampaignSpec {
            name: "panic_grid".into(),
            grid: CampaignGrid::Gadgets {
                bit_sizes: vec![4],
                seeds: vec![1],
                bandwidth: 1,
            },
        };
        let total = spec.points().len() as u64;
        assert!(total >= 2, "both gadget families expand");
        let out = run_campaign(&spec, &opts(2)).expect("run survives panicking points");
        assert_eq!(out.aggregate.points, total);
        assert_eq!(out.aggregate.points_failed, total);
        assert_eq!(out.aggregate.ok, 0);
        assert!(out.records.is_empty());
        for (i, f) in out.failures.iter().enumerate() {
            assert_eq!(f.index, i);
            // The width assertions panic with plain text (not a SimError
            // Display string), so this lands in the generic panic bucket.
            assert_eq!(f.kind, "panic", "unexpected classification: {}", f.error);
            assert!(f.error.contains("exceeds B"), "payload kept: {}", f.error);
            assert_eq!(f.attempts, 1, "the default budget is one attempt");
        }
        // Every journal line of this outcome is a valid failure record.
        for line in out.deterministic_jsonl().lines() {
            crate::point::validate_failure_line(line).expect("failure line conforms");
        }
        // And the mixed-line fold matches the order-independent fold.
        assert_eq!(
            Aggregate::fold_full(&out.records, &out.failures),
            out.aggregate
        );
    }

    #[test]
    fn runner_deadline_failures_are_retried_to_the_attempt_budget() {
        // A zero deadline cannot be met; each attempt times out, the
        // supervisor retries once (deadlines are transient), then
        // commits a failure with the full attempt count. The point is
        // deliberately heavy (~75 ms in debug builds) so the attempt
        // thread cannot finish before the deadline check even under
        // scheduler contention.
        let spec = CampaignSpec {
            name: "deadline_grid".into(),
            grid: CampaignGrid::SimThm {
                gammas: vec![10],
                lengths: vec![129],
                bandwidth: 16,
            },
        };
        let out = run_campaign(
            &spec,
            &RunOptions {
                point_deadline_ms: Some(0),
                max_attempts: 2,
                ..RunOptions::default()
            },
        )
        .expect("run survives deadline overruns");
        assert_eq!(out.failures.len(), 1);
        let f = &out.failures[0];
        assert_eq!(f.kind, "deadline");
        assert!(f.retryable);
        assert_eq!(f.attempts, 2, "the budget allows exactly one retry");
        assert_eq!(out.aggregate.points_failed, 1);
        assert_eq!(out.aggregate.points_retried, 1);
    }

    #[test]
    fn runner_backoff_schedule_is_deterministic_and_bounded() {
        for (seed, index, attempt) in [(0u64, 0usize, 1u32), (7, 3, 2), (42, 11, 4), (1, 2, 9)] {
            let a = backoff_ms(seed, index, attempt);
            let b = backoff_ms(seed, index, attempt);
            assert_eq!(a, b, "pure function of its arguments");
            assert!(a <= 250, "capped at 250 ms, got {a}");
            assert!(a >= 25, "at least the base delay, got {a}");
        }
        assert_ne!(
            backoff_ms(1, 0, 1),
            backoff_ms(2, 0, 1),
            "seed moves the jitter"
        );
    }

    #[test]
    fn runner_cancelled_token_interrupts_before_any_point() {
        let spec = builtin("simthm_smoke").expect("builtin");
        let cancel = CancelToken::new();
        cancel.cancel();
        let dir = std::env::temp_dir().join("qdc_runner_cancel_test");
        std::fs::create_dir_all(&dir).expect("tmpdir");
        let out_path = dir.join("cancelled.jsonl").to_string_lossy().into_owned();
        let outcome = run_campaign_journaled(
            &spec,
            &RunOptions::default(),
            &JournalConfig {
                out_path: out_path.clone(),
                resume: false,
                ..JournalConfig::default()
            },
            &cancel,
        )
        .expect("cancelled run still returns cleanly");
        assert!(outcome.interrupted);
        assert_eq!(outcome.executed, 0);
        assert_eq!(
            std::fs::read_to_string(&out_path).expect("journal exists"),
            "",
            "nothing was committed"
        );
        // Resume with a live token completes the grid.
        let resumed = run_campaign_journaled(
            &spec,
            &RunOptions::default(),
            &JournalConfig {
                out_path: out_path.clone(),
                resume: true,
                ..JournalConfig::default()
            },
            &CancelToken::new(),
        )
        .expect("resume runs");
        assert!(!resumed.interrupted);
        assert_eq!(resumed.executed, resumed.total_points);
        let reference = run_campaign(&spec, &RunOptions::default()).expect("reference");
        assert_eq!(
            std::fs::read_to_string(&out_path).expect("journal exists"),
            reference.deterministic_jsonl(),
            "resumed journal matches the in-memory deterministic form"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
