//! The campaign runner: deterministic sharding, scoped worker threads,
//! order-independent aggregation.
//!
//! # Determinism contract
//!
//! Running the same spec on 1 thread or N threads yields **byte-identical**
//! deterministic output:
//!
//! 1. [`CampaignSpec::points`](crate::CampaignSpec::points) expands the
//!    grid in a fixed order; a point's index is assigned *before*
//!    sharding.
//! 2. Worker `w` of `t` takes points `w, w + t, w + 2t, …` (round-robin
//!    by index). Which worker runs a point cannot change its result:
//!    every experiment is a pure function of its `PointSpec`.
//! 3. Results are scattered back into an index-ordered table, so the
//!    record list — and the JSONL file written from it — is in point
//!    order no matter which worker finished first.
//! 4. The aggregate folds only `u64` counters with commutative,
//!    associative operations (`+` and `max`), walking the table in index
//!    order. Even if the fold order changed, the result could not.
//!
//! The one thing that *does* vary between runs — wall-clock time — is
//! kept in dedicated fields (`wall_us` per record, `wall_ms` per
//! campaign) that the deterministic serializations omit.

use crate::json::Json;
use crate::point::{execute_point_sharded, PointRecord};
use crate::spec::{CampaignError, CampaignSpec, PointSpec, CAMPAIGN_SCHEMA};
use qdc_congest::{TelemetryReport, TrafficTrace};

/// How to run a campaign.
#[derive(Clone, Debug)]
pub struct RunOptions {
    /// Worker thread count (must be ≥ 1).
    pub threads: usize,
    /// Whether to keep per-point traffic traces in the outcome (they
    /// can be large; the CLI only asks for them when archiving).
    pub keep_traces: bool,
    /// Whether to profile each point with a telemetry sink
    /// ([`execute_point_with_telemetry`](crate::point::execute_point_with_telemetry)).
    /// Off by default: the null-sink path is the zero-overhead one.
    pub keep_telemetry: bool,
    /// Worker thread count for each point's *round engine* (the
    /// simulator's compute phase), as distinct from `threads`, which
    /// shards whole points. Both levels carry the same byte-identical
    /// determinism contract, so any combination is safe. Must be ≥ 1.
    pub sim_threads: usize,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            threads: 1,
            keep_traces: false,
            keep_telemetry: false,
            sim_threads: 1,
        }
    }
}

/// Order-independent fold of every record's counters. All fields are
/// `u64` and folded with `+`/`max` only, so the result cannot depend on
/// evaluation order — see the module docs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Aggregate {
    /// Total points executed.
    pub points: u64,
    /// Points that finished without a structured error.
    pub ok: u64,
    /// Points that returned a structured error.
    pub errors: u64,
    /// Points whose verdict was accept.
    pub accepted: u64,
    /// Points whose verdict was reject.
    pub rejected: u64,
    /// Sum of rounds across all points.
    pub rounds: u64,
    /// Sum of messages across all points.
    pub messages: u64,
    /// Sum of payload bits across all points.
    pub bits: u64,
    /// Max single-round bit volume seen by any point.
    pub max_bits_per_round: u64,
    /// Sum of dropped messages (fault injection).
    pub dropped: u64,
    /// Sum of crashed nodes (fault injection).
    pub crashed: u64,
    /// Sum of corrupted payloads (fault injection).
    pub corrupted: u64,
}

impl Aggregate {
    /// Folds a record list (in any order — the result is the same).
    pub fn fold(records: &[PointRecord]) -> Aggregate {
        let mut agg = Aggregate::default();
        for rec in records {
            agg.points += 1;
            if rec.error.is_some() {
                agg.errors += 1;
            } else {
                agg.ok += 1;
            }
            match rec.accept {
                Some(true) => agg.accepted += 1,
                Some(false) => agg.rejected += 1,
                None => {}
            }
            agg.rounds += rec.metrics.rounds;
            agg.messages += rec.metrics.messages_sent;
            agg.bits += rec.metrics.bits_sent;
            agg.max_bits_per_round = agg.max_bits_per_round.max(rec.metrics.max_bits_per_round);
            agg.dropped += rec.metrics.messages_dropped;
            agg.crashed += rec.metrics.nodes_crashed;
            agg.corrupted += rec.metrics.bits_corrupted;
        }
        agg
    }

    /// Canonical JSON form (stable field order, integers only).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("points", Json::Num(self.points)),
            ("ok", Json::Num(self.ok)),
            ("errors", Json::Num(self.errors)),
            ("accepted", Json::Num(self.accepted)),
            ("rejected", Json::Num(self.rejected)),
            ("rounds", Json::Num(self.rounds)),
            ("messages", Json::Num(self.messages)),
            ("bits", Json::Num(self.bits)),
            ("max_bits_per_round", Json::Num(self.max_bits_per_round)),
            ("dropped", Json::Num(self.dropped)),
            ("crashed", Json::Num(self.crashed)),
            ("corrupted", Json::Num(self.corrupted)),
        ])
    }
}

/// Everything one campaign run produced.
#[derive(Clone, Debug)]
pub struct CampaignOutcome {
    /// The campaign's name (copied from the spec).
    pub spec_name: String,
    /// Per-point records, in point-index order.
    pub records: Vec<PointRecord>,
    /// Per-point traffic traces (index-aligned with `records`;
    /// `None` for untraced kinds or when `keep_traces` was off).
    pub traces: Vec<Option<TrafficTrace>>,
    /// Per-point telemetry profiles (index-aligned with `records`;
    /// `None` for unprofiled kinds or when `keep_telemetry` was off).
    pub telemetry: Vec<Option<TelemetryReport>>,
    /// The order-independent fold of `records`.
    pub aggregate: Aggregate,
    /// Wall-clock time of the whole campaign in milliseconds.
    /// Excluded from the determinism contract.
    pub wall_ms: u64,
    /// Thread count the campaign ran with.
    pub threads: usize,
}

impl CampaignOutcome {
    /// The deterministic portion of the run as JSONL: one record per
    /// point, in index order, without wall-clock fields. Two runs of
    /// the same spec agree on this string byte for byte regardless of
    /// thread count.
    pub fn deterministic_jsonl(&self) -> String {
        let mut out = String::new();
        for rec in &self.records {
            out.push_str(&crate::point::record_json(&self.spec_name, rec, false));
            out.push('\n');
        }
        out
    }
}

/// Renders the campaign summary document (`BENCH_<name>.json` shape).
/// The `aggregate` object inside it is the byte-identical part; the
/// `threads` and `wall_ms` fields describe this particular run.
pub fn summary_json(outcome: &CampaignOutcome) -> String {
    Json::obj([
        ("schema", Json::Str(CAMPAIGN_SCHEMA.to_string())),
        ("campaign", Json::Str(outcome.spec_name.clone())),
        ("threads", Json::Num(outcome.threads as u64)),
        ("wall_ms", Json::Num(outcome.wall_ms)),
        ("aggregate", outcome.aggregate.to_json()),
    ])
    .to_json()
}

/// Strict conformance check for one `qdc-campaign/v1` summary document:
/// the exact field list in the exact order, the schema tag, and an
/// integer-only aggregate with the exact counter list. A trailing
/// newline (as written by the campaign binary) is accepted.
pub fn validate_summary(text: &str) -> Result<(), String> {
    let doc = crate::json::parse(text.strip_suffix('\n').unwrap_or(text))?;
    crate::json::require_keys(
        &doc,
        &["schema", "campaign", "threads", "wall_ms", "aggregate"],
        &[],
    )?;
    match doc.get("schema") {
        Some(Json::Str(s)) if s == CAMPAIGN_SCHEMA => {}
        _ => return Err(format!("schema tag must be `{CAMPAIGN_SCHEMA}`")),
    }
    if !matches!(doc.get("campaign"), Some(Json::Str(_))) {
        return Err("`campaign` must be a string".into());
    }
    for key in ["threads", "wall_ms"] {
        if doc.get(key).and_then(Json::as_u64).is_none() {
            return Err(format!("`{key}` must be an unsigned integer"));
        }
    }
    let agg = doc.get("aggregate").expect("checked above");
    crate::json::require_keys(
        agg,
        &[
            "points",
            "ok",
            "errors",
            "accepted",
            "rejected",
            "rounds",
            "messages",
            "bits",
            "max_bits_per_round",
            "dropped",
            "crashed",
            "corrupted",
        ],
        &[],
    )
    .map_err(|e| format!("aggregate: {e}"))?;
    if let Json::Obj(fields) = agg {
        for (k, v) in fields {
            if v.as_u64().is_none() {
                return Err(format!(
                    "aggregate counter `{k}` must be an unsigned integer"
                ));
            }
        }
    }
    Ok(())
}

/// Validates, expands, shards and runs a campaign.
///
/// Sharding is round-robin by point index over a
/// [`std::thread::scope`] pool of `options.threads` workers; see the
/// module docs for why the output cannot depend on the thread count.
pub fn run_campaign(
    spec: &CampaignSpec,
    options: &RunOptions,
) -> Result<CampaignOutcome, CampaignError> {
    if options.threads == 0 || options.sim_threads == 0 {
        return Err(CampaignError::ZeroThreads);
    }
    spec.validate()?;
    let points = spec.points();
    let start = std::time::Instant::now();

    let threads = options.threads.min(points.len()).max(1);
    type Slot = (PointRecord, Option<TrafficTrace>, Option<TelemetryReport>);
    let mut slots: Vec<Option<Slot>> = Vec::new();
    slots.resize_with(points.len(), || None);

    // Which worker runs a point cannot change its result, and neither
    // can observation: the profiled path is bit-for-bit the plain one.
    let sim_options = qdc_congest::RunOptions {
        threads: options.sim_threads,
    };
    let run_one = |i: usize, point: &PointSpec| -> Slot {
        execute_point_sharded(i, point, options.keep_telemetry, sim_options)
    };

    if threads == 1 {
        for (i, point) in points.iter().enumerate() {
            slots[i] = Some(run_one(i, point));
        }
    } else {
        let results = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(threads);
            for w in 0..threads {
                let points = &points;
                let run_one = &run_one;
                handles.push(scope.spawn(move || {
                    (w..points.len())
                        .step_by(threads)
                        .map(|i| (i, run_one(i, &points[i])))
                        .collect::<Vec<_>>()
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("campaign worker panicked"))
                .collect::<Vec<_>>()
        });
        for shard in results {
            for (i, result) in shard {
                slots[i] = Some(result);
            }
        }
    }

    let mut records = Vec::with_capacity(slots.len());
    let mut traces = Vec::with_capacity(slots.len());
    let mut telemetry = Vec::with_capacity(slots.len());
    for slot in slots {
        let (rec, trace, profile) =
            slot.expect("every point index was sharded to exactly one worker");
        records.push(rec);
        traces.push(if options.keep_traces { trace } else { None });
        telemetry.push(profile);
    }
    let aggregate = Aggregate::fold(&records);
    Ok(CampaignOutcome {
        spec_name: spec.name.clone(),
        records,
        traces,
        telemetry,
        aggregate,
        wall_ms: start.elapsed().as_millis() as u64,
        threads: options.threads,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use crate::spec::builtin;

    #[test]
    fn runner_rejects_zero_threads() {
        let spec = builtin("simthm_smoke").expect("builtin");
        let err = run_campaign(
            &spec,
            &RunOptions {
                threads: 0,
                keep_traces: false,
                keep_telemetry: false,
                sim_threads: 1,
            },
        )
        .expect_err("zero threads is invalid");
        assert_eq!(err, CampaignError::ZeroThreads);
    }

    #[test]
    fn runner_one_and_four_threads_agree_byte_for_byte() {
        let spec = builtin("simthm_smoke").expect("builtin");
        let one = run_campaign(
            &spec,
            &RunOptions {
                threads: 1,
                keep_traces: false,
                keep_telemetry: false,
                sim_threads: 1,
            },
        )
        .expect("runs");
        let four = run_campaign(
            &spec,
            &RunOptions {
                threads: 4,
                keep_traces: false,
                keep_telemetry: false,
                sim_threads: 1,
            },
        )
        .expect("runs");
        assert_eq!(one.deterministic_jsonl(), four.deterministic_jsonl());
        assert_eq!(one.aggregate, four.aggregate);
        assert_eq!(
            one.aggregate.to_json().to_json(),
            four.aggregate.to_json().to_json()
        );
    }

    #[test]
    fn runner_records_are_in_point_order_with_complete_coverage() {
        let spec = builtin("simthm_smoke").expect("builtin");
        let out = run_campaign(
            &spec,
            &RunOptions {
                threads: 3,
                keep_traces: true,
                keep_telemetry: false,
                sim_threads: 1,
            },
        )
        .expect("runs");
        assert_eq!(out.records.len(), spec.points().len());
        for (i, rec) in out.records.iter().enumerate() {
            assert_eq!(rec.index, i);
        }
        assert_eq!(out.traces.len(), out.records.len());
        assert!(
            out.traces.iter().all(Option::is_some),
            "simthm runs are traced"
        );
        assert_eq!(out.aggregate.points, out.records.len() as u64);
        assert_eq!(out.aggregate.accepted, out.records.len() as u64);
        assert_eq!(out.aggregate.errors, 0);
    }

    #[test]
    fn runner_aggregate_fold_is_order_independent() {
        let spec = builtin("gadget_sweep").expect("builtin");
        let out = run_campaign(
            &spec,
            &RunOptions {
                threads: 2,
                keep_traces: false,
                keep_telemetry: false,
                sim_threads: 1,
            },
        )
        .expect("runs");
        let mut reversed = out.records.clone();
        reversed.reverse();
        assert_eq!(Aggregate::fold(&reversed), out.aggregate);
    }

    #[test]
    fn runner_summary_parses_and_carries_the_aggregate() {
        let spec = builtin("simthm_smoke").expect("builtin");
        let out = run_campaign(&spec, &RunOptions::default()).expect("runs");
        let doc = json::parse(&summary_json(&out)).expect("summary is valid JSON");
        assert_eq!(
            doc.get("schema"),
            Some(&Json::Str(CAMPAIGN_SCHEMA.to_string()))
        );
        let agg = doc.get("aggregate").expect("aggregate present");
        assert_eq!(
            agg.get("points").and_then(Json::as_u64),
            Some(out.aggregate.points)
        );
        assert_eq!(agg.get("errors").and_then(Json::as_u64), Some(0));
    }

    #[test]
    fn runner_keep_telemetry_profiles_points_without_perturbing_records() {
        let spec = builtin("telemetry_smoke").expect("builtin");
        let plain = run_campaign(&spec, &RunOptions::default()).expect("runs");
        let observed = run_campaign(
            &spec,
            &RunOptions {
                threads: 2,
                keep_traces: false,
                keep_telemetry: true,
                sim_threads: 1,
            },
        )
        .expect("runs");
        // Observation never perturbs the deterministic output.
        assert_eq!(plain.deterministic_jsonl(), observed.deterministic_jsonl());
        assert!(plain.telemetry.iter().all(Option::is_none));
        assert_eq!(observed.telemetry.len(), observed.records.len());
        for (rec, profile) in observed.records.iter().zip(&observed.telemetry) {
            let profile = profile.as_ref().expect("simthm points are profiled");
            assert_eq!(profile.total_messages(), rec.metrics.messages_sent);
            assert_eq!(profile.total_bits(), rec.metrics.bits_sent);
            assert_eq!(profile.rounds.len() as u64, rec.metrics.rounds);
        }
    }

    #[test]
    fn runner_summary_validator_accepts_real_output_and_rejects_mutants() {
        let spec = builtin("telemetry_smoke").expect("builtin");
        let out = run_campaign(&spec, &RunOptions::default()).expect("runs");
        let summary = summary_json(&out);
        validate_summary(&summary).expect("real summary conforms");
        validate_summary(&format!("{summary}\n")).expect("trailing newline is fine");
        for (broken, why) in [
            (
                summary.replace("qdc-campaign/v1", "qdc-campaign/v0"),
                "wrong schema tag",
            ),
            (
                summary.replace("\"points\"", "\"pts\""),
                "unknown aggregate key",
            ),
            (
                summary.replace("\"wall_ms\"", "\"wall_us\""),
                "wrong field name",
            ),
            (
                summary.replace("{\"schema\"", "{\"campaign\":\"x\",\"schema\""),
                "reordered fields",
            ),
        ] {
            assert!(validate_summary(&broken).is_err(), "should reject {why}");
        }
        // Every record line passes the strict line validator too.
        for line in out.deterministic_jsonl().lines() {
            crate::point::validate_record_line(line).expect("record line conforms");
        }
    }

    #[test]
    fn runner_chaos_ensemble_runs_under_faults() {
        // A trimmed chaos grid (the builtin's shape, fewer seeds) to keep
        // unit-test wall time down while still exercising the fallible path.
        let spec = CampaignSpec {
            name: "chaos_mini".into(),
            grid: crate::spec::CampaignGrid::Chaos {
                nodes: 12,
                extra_edges: 3,
                drop_pm: vec![0, 250],
                seeds: vec![1, 2],
                bandwidth: 8,
            },
        };
        let out = run_campaign(
            &spec,
            &RunOptions {
                threads: 2,
                keep_traces: false,
                keep_telemetry: false,
                sim_threads: 1,
            },
        )
        .expect("runs");
        assert_eq!(out.aggregate.points, 4);
        assert_eq!(out.aggregate.errors, 0);
        assert_eq!(
            out.aggregate.accepted, 4,
            "robust broadcast should inform everyone"
        );
        assert!(
            out.aggregate.dropped > 0,
            "the lossy half must drop messages"
        );
    }
}
