//! Executing one expanded point and rendering its record.
//!
//! [`execute_point`] is the single dispatch site from a [`PointSpec`]
//! to the underlying experiment code: the simulation-theorem adapter
//! ([`qdc_simthm::campaign`]), the robust-broadcast chaos stack
//! ([`qdc_algos::flood`]), the gadget adapter plus distributed verifier
//! ([`qdc_gadgets::campaign`] + [`qdc_algos::verify`]), or the Example
//! 1.1 Disjointness protocols ([`qdc_algos::disjointness`], classical
//! streaming vs quantum Grover round trips). Every path folds into the
//! same [`PointRecord`] shape so the runner can aggregate without
//! caring which kind it ran.
//!
//! Record serialization keeps wall-clock time in a **separate, final**
//! field ([`record_json`] can omit it), because wall time is the one
//! thing that legitimately differs between runs of the same campaign —
//! everything else is covered by the byte-identical determinism
//! contract.

use crate::json::Json;
use crate::spec::{PointSpec, FAILURE_SCHEMA, POINT_SCHEMA};
use qdc_algos::disjointness::{
    classical_disjointness_observed, classical_rounds, quantum_disjointness_seeded, quantum_rounds,
    DisjointnessRun,
};
use qdc_algos::flood::{chaos_round_budget, robust_broadcast_with};
use qdc_algos::verify::verify_hamiltonian_cycle;
use qdc_congest::{
    ChaosConfig, CongestConfig, NullTelemetry, RoundProfiler, RunMetrics, RunOptions, RunReport,
    SimError, StreamSink, Telemetry, TelemetryReport, TrafficTrace,
};
use qdc_graph::{generate, Graph, GraphBuilder, NodeId, Subgraph};

/// The Grover measurement stream of every quantum ex11 point comes from
/// this fixed protocol seed, so records are reproducible grid-wide.
const EX11_PROTOCOL_SEED: u64 = 11;

/// Quiescence slack on the classical streaming pipeline: the engine
/// spends up to two extra rounds draining the final chunk and observing
/// global termination beyond the closed-form `D + ⌈b/B⌉ − 1`.
const EX11_CLASSICAL_SLACK: u64 = 2;

/// Runs one Example 1.1 point's protocol: the classical streaming
/// pipeline or the seeded Grover round-trip bounce, under the given
/// telemetry sink.
fn run_ex11<T: Telemetry>(
    x: &[bool],
    y: &[bool],
    d: usize,
    cfg: CongestConfig,
    quantum: bool,
    options: RunOptions,
    telemetry: &mut T,
) -> (DisjointnessRun, RunReport) {
    if quantum {
        quantum_disjointness_seeded(x, y, d, cfg, EX11_PROTOCOL_SEED, options, telemetry)
    } else {
        classical_disjointness_observed(x, y, d, cfg, options, telemetry)
    }
}

/// How the runner observes each point of a campaign.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub enum TelemetryMode {
    /// No sink — the zero-overhead [`NullTelemetry`] hot path.
    #[default]
    Off,
    /// Exact buffered profiling: a [`RoundProfiler`] rides along and the
    /// full [`TelemetryReport`] comes back in the outcome (memory grows
    /// with run length; the committer archives it after the fact).
    Exact,
    /// O(1)-memory streaming: a [`StreamSink`] writes
    /// `<dir>/point_<i>.telemetry.jsonl` incrementally *during* the run
    /// — round lines land the moment each round commits, and memory
    /// stays flat however long the horizon. Gadget points compose
    /// several simulator stages with no single run to observe, so they
    /// produce no archive in this mode (exactly as they yield no report
    /// in [`Exact`](TelemetryMode::Exact) mode).
    Stream(StreamTelemetry),
}

/// Where and how [`TelemetryMode::Stream`] archives land.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StreamTelemetry {
    /// Directory receiving one `point_<i>.telemetry.jsonl` per point
    /// (created on demand).
    pub dir: String,
    /// Capacity of the hottest-edge / hottest-node sketches.
    pub top_k: usize,
    /// Include the volatile `wall_ns` fields (off is the byte-identical
    /// deterministic form).
    pub with_wall: bool,
}

impl StreamTelemetry {
    /// A deterministic stream config over `dir` with the default sketch
    /// capacity (16).
    pub fn new(dir: impl Into<String>) -> StreamTelemetry {
        StreamTelemetry {
            dir: dir.into(),
            top_k: 16,
            with_wall: false,
        }
    }
}

/// The archive path of a streamed point — the same naming scheme the
/// exact-mode committer uses, so downstream consumers (the service's
/// telemetry endpoints, `profile query`) need not care which sink wrote
/// the file.
pub fn stream_telemetry_path(dir: &str, index: usize) -> String {
    format!("{dir}/point_{index}.telemetry.jsonl")
}

/// Staged write of one streamed archive: bytes go to a `.part` sibling
/// and are renamed into place only after the footer lands, so a file at
/// the final path is always a complete archive — a retried or failed
/// attempt can never leave a torn one behind.
struct StreamStage {
    part: String,
    final_path: String,
}

impl StreamStage {
    /// Creates the staging file (and the directory, on demand).
    fn begin(
        index: usize,
        cfg: &StreamTelemetry,
    ) -> Result<(StreamStage, std::fs::File), PointFailure> {
        let final_path = stream_telemetry_path(&cfg.dir, index);
        let part = format!("{final_path}.part");
        std::fs::create_dir_all(&cfg.dir)
            .and_then(|()| {
                // Remove before create so an attempt abandoned by the
                // deadline watchdog keeps writing its own orphaned
                // inode instead of interleaving with ours.
                match std::fs::remove_file(&part) {
                    Err(e) if e.kind() != std::io::ErrorKind::NotFound => Err(e),
                    _ => std::fs::File::create(&part),
                }
            })
            .map(|file| (StreamStage { part, final_path }, file))
            .map_err(|e| PointFailure::from_io(index, &e))
    }

    /// Finishes the sink (footer + flush) and renames the archive into
    /// place.
    fn commit(self, index: usize, sink: StreamSink<std::fs::File>) -> Result<(), PointFailure> {
        sink.finish()
            .and_then(|_| std::fs::rename(&self.part, &self.final_path))
            .map_err(|e| {
                let _ = std::fs::remove_file(&self.part);
                PointFailure::from_io(index, &e)
            })
    }

    /// Drops the staging file after a failed attempt.
    fn abandon(self) {
        let _ = std::fs::remove_file(&self.part);
    }
}

/// The outcome of one executed point, in kind-independent shape.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PointRecord {
    /// Index of the point in the expanded grid (stable across thread
    /// counts; names the record in the JSONL output).
    pub index: usize,
    /// Experiment kind: `"simthm"`, `"chaos"`, `"gadget"` or `"ex11"`.
    pub kind: &'static str,
    /// The grid coordinates of the point, as stable key/value pairs.
    pub params: Vec<(&'static str, Json)>,
    /// The run's traffic accounting.
    pub metrics: RunMetrics,
    /// The point's pass/fail verdict, when it has one: budget adherence
    /// (simthm), full dissemination (chaos), verifier-vs-prediction
    /// agreement (gadget). `None` when the run errored before deciding.
    pub accept: Option<bool>,
    /// Kind-specific extra observations (paid bits, informed counts, …).
    pub extra: Vec<(&'static str, Json)>,
    /// Retained for schema stability: the `qdc-campaign-point/v1` field
    /// order pins an `error` slot, but the supervised runner now turns
    /// every structured error into a [`PointFailure`] record instead, so
    /// freshly written records always carry `null` here. Historical
    /// archives (pre-failure-schema) may still carry strings.
    pub error: Option<String>,
    /// Wall-clock time of this point in microseconds. Excluded from the
    /// determinism contract.
    pub wall_us: u64,
}

/// Why one point produced no [`PointRecord`]: its (final) attempt
/// panicked, returned a structured [`SimError`], or exceeded the
/// supervised runner's wall-clock deadline. Serialized as one
/// `qdc-campaign-failure/v1` line in the campaign journal, occupying the
/// failed point's index slot so recovery stays index-contiguous.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PointFailure {
    /// Index of the point in the expanded grid.
    pub index: usize,
    /// Stable failure kind: one of [`SimError::kind`]'s names, or
    /// `"panic"` (unclassifiable panic payload), or `"deadline"`.
    pub kind: &'static str,
    /// Whether the supervised runner may retry this kind of failure
    /// (see [`SimError::is_retryable`]; panics and deadlines are treated
    /// as transient, protocol violations as permanent).
    pub retryable: bool,
    /// How many attempts were made before giving up (≥ 1; the first try
    /// counts).
    pub attempts: u32,
    /// Human-readable failure message (panic payload or error Display).
    pub error: String,
}

impl PointFailure {
    /// Wraps a structured simulator error from a fallible entry point.
    pub fn from_sim_error(index: usize, e: &SimError) -> PointFailure {
        PointFailure {
            index,
            kind: e.kind(),
            retryable: e.is_retryable(),
            attempts: 1,
            error: e.to_string(),
        }
    }

    /// Classifies a caught panic payload. Panicking simulator APIs emit
    /// exactly the [`SimError`] Display text, so those map back to the
    /// structured kind; anything else is a generic `"panic"`, treated as
    /// transient (a supervisor cannot prove a foreign panic is
    /// deterministic, and retrying a deterministic one only costs the
    /// bounded attempt budget).
    pub fn from_panic(index: usize, payload: &(dyn std::any::Any + Send)) -> PointFailure {
        let message = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "panic with non-string payload".to_string());
        let (kind, retryable) = SimError::classify_message(&message).unwrap_or(("panic", true));
        PointFailure {
            index,
            kind,
            retryable,
            attempts: 1,
            error: message,
        }
    }

    /// A point that exceeded the supervised runner's wall-clock deadline.
    pub fn deadline(index: usize, deadline_ms: u64) -> PointFailure {
        PointFailure {
            index,
            kind: "deadline",
            retryable: true,
            attempts: 1,
            error: format!("point exceeded the {deadline_ms} ms wall-clock deadline"),
        }
    }

    /// An archive write failed mid-point (streaming telemetry). Treated
    /// as transient: a full disk stays full, but the bounded attempt
    /// budget caps the cost, and the other classic causes (fd pressure,
    /// a racing cleanup) do clear.
    pub fn from_io(index: usize, e: &std::io::Error) -> PointFailure {
        PointFailure {
            index,
            kind: "io",
            retryable: true,
            attempts: 1,
            error: format!("telemetry archive write failed: {e}"),
        }
    }
}

/// Re-embeds a gadget instance as a subnetwork `M` of a connected host
/// network (the CONGEST setup Definition 3.3 assumes): the host carries
/// every instance edge plus a node path `0–1–…–(n−1)` so the verifier
/// can communicate even when `M` splits into several cycles.
fn embed_in_connected_host(instance: &Graph) -> (Graph, Subgraph) {
    let n = instance.node_count();
    let mut b = GraphBuilder::new(n);
    let m_edges: Vec<_> = instance
        .edges()
        .map(|e| {
            let (u, v) = instance.endpoints(e);
            b.add_edge(u, v)
        })
        .collect();
    for i in 0..n.saturating_sub(1) {
        b.add_edge_if_absent(NodeId(i as u32), NodeId(i as u32 + 1));
    }
    let host = b.build();
    let sub = Subgraph::from_edges(&host, m_edges);
    (host, sub)
}

/// Runs one point. Returns the record plus, for traced kinds, the
/// per-round traffic trace (archivable via [`TrafficTrace::to_jsonl`]),
/// or a structured [`PointFailure`] when a fallible entry point errored
/// (the supervised runner decides whether to retry or journal it).
///
/// Wall time is measured here but stored separately so callers can
/// compare the deterministic parts of two runs byte for byte.
pub fn execute_point(
    index: usize,
    spec: &PointSpec,
) -> Result<(PointRecord, Option<TrafficTrace>), PointFailure> {
    let (record, trace, _) =
        execute_point_impl(index, spec, &TelemetryMode::Off, RunOptions::default())?;
    Ok((record, trace))
}

/// [`execute_point`] with explicit simulator [`RunOptions`] and a
/// [`TelemetryMode`] — the runner's entry point when the campaign asks
/// for sharded round execution (`--sim-threads`). The record, trace and
/// telemetry (buffered or streamed) are byte-identical at every thread
/// count.
pub fn execute_point_sharded(
    index: usize,
    spec: &PointSpec,
    telemetry: &TelemetryMode,
    options: RunOptions,
) -> Result<(PointRecord, Option<TrafficTrace>, Option<TelemetryReport>), PointFailure> {
    execute_point_impl(index, spec, telemetry, options)
}

/// [`execute_point`] with a [`RoundProfiler`] observing the run.
///
/// Simulation-theorem points are profiled with the highway/path node
/// classification ([`qdc_simthm::campaign::run_point_observed`]); chaos
/// points are profiled unclassified. Gadget points compose several
/// simulator stages with no single run to profile, so they yield `None`.
/// A broadcast that errors yields a [`PointFailure`] (its partial
/// profile is discarded with the failed attempt).
///
/// Telemetry observes, never perturbs: the record is bit-for-bit the
/// one [`execute_point`] produces (modulo `wall_us`).
pub fn execute_point_with_telemetry(
    index: usize,
    spec: &PointSpec,
) -> Result<(PointRecord, Option<TrafficTrace>, Option<TelemetryReport>), PointFailure> {
    execute_point_impl(index, spec, &TelemetryMode::Exact, RunOptions::default())
}

fn execute_point_impl(
    index: usize,
    spec: &PointSpec,
    telemetry_mode: &TelemetryMode,
    options: RunOptions,
) -> Result<(PointRecord, Option<TrafficTrace>, Option<TelemetryReport>), PointFailure> {
    let start = std::time::Instant::now();
    let (kind, params, metrics, accept, extra, error, trace, telemetry) = match spec {
        PointSpec::SimThm(p) => {
            let (out, telemetry) = match telemetry_mode {
                TelemetryMode::Off => (qdc_simthm::campaign::run_point_with(p, options), None),
                TelemetryMode::Exact => {
                    let (out, t) = qdc_simthm::campaign::run_point_observed_with(p, options);
                    (out, Some(t))
                }
                TelemetryMode::Stream(scfg) => {
                    let (stage, file) = StreamStage::begin(index, scfg)?;
                    let (out, sink) = qdc_simthm::campaign::run_point_sink_with(
                        p,
                        options,
                        |nodes, edges, classes| {
                            StreamSink::new(file, nodes, edges, p.bandwidth, scfg.top_k)
                                .with_classes(classes)
                                .with_wall(scfg.with_wall)
                        },
                    );
                    stage.commit(index, sink)?;
                    (out, None)
                }
            };
            (
                "simthm",
                vec![
                    ("gamma", Json::Num(p.gamma as u64)),
                    ("l", Json::Num(p.l as u64)),
                    ("bandwidth", Json::Num(p.bandwidth as u64)),
                ],
                out.metrics,
                Some(out.within_budget),
                vec![
                    ("node_count", Json::Num(out.node_count)),
                    ("highways", Json::Num(out.highways)),
                    ("horizon", Json::Num(out.horizon)),
                    ("paid_bits", Json::Num(out.paid_bits)),
                    ("max_paid_per_round", Json::Num(out.max_paid_per_round)),
                    ("per_round_budget", Json::Num(out.per_round_budget)),
                ],
                None,
                Some(out.trace),
                telemetry,
            )
        }
        PointSpec::Chaos {
            nodes,
            extra_edges,
            drop_pm,
            seed,
            bandwidth,
        } => {
            let graph = generate::random_connected(*nodes, *extra_edges, *seed);
            let drop_prob = f64::from(*drop_pm) / 1000.0;
            let give_up = chaos_round_budget(*nodes, drop_prob);
            let chaos = ChaosConfig {
                seed: *seed,
                drop_prob,
                crash_schedule: Vec::new(),
                corrupt_prob: 0.0,
                max_rounds_watchdog: give_up + 5,
            };
            let params = vec![
                ("nodes", Json::Num(*nodes as u64)),
                ("extra_edges", Json::Num(*extra_edges as u64)),
                ("drop_pm", Json::Num(u64::from(*drop_pm))),
                ("seed", Json::Num(*seed)),
                ("bandwidth", Json::Num(*bandwidth as u64)),
            ];
            let cfg = CongestConfig::classical(*bandwidth);
            let (result, telemetry) = match telemetry_mode {
                TelemetryMode::Off => (
                    robust_broadcast_with(
                        &graph,
                        cfg,
                        options,
                        NodeId(0),
                        &chaos,
                        give_up,
                        &mut NullTelemetry,
                    ),
                    None,
                ),
                TelemetryMode::Exact => {
                    let mut profiler =
                        RoundProfiler::new(graph.node_count(), graph.edge_count(), *bandwidth);
                    let result = robust_broadcast_with(
                        &graph,
                        cfg,
                        options,
                        NodeId(0),
                        &chaos,
                        give_up,
                        &mut profiler,
                    );
                    (result, Some(profiler.finish()))
                }
                TelemetryMode::Stream(scfg) => {
                    let (stage, file) = StreamStage::begin(index, scfg)?;
                    let mut sink = StreamSink::new(
                        file,
                        graph.node_count(),
                        graph.edge_count(),
                        *bandwidth,
                        scfg.top_k,
                    )
                    .with_wall(scfg.with_wall);
                    let result = robust_broadcast_with(
                        &graph,
                        cfg,
                        options,
                        NodeId(0),
                        &chaos,
                        give_up,
                        &mut sink,
                    );
                    // A failed attempt commits no archive — the `.part`
                    // staging file is dropped with it.
                    match &result {
                        Ok(_) => stage.commit(index, sink)?,
                        Err(_) => stage.abandon(),
                    }
                    (result, None)
                }
            };
            match result {
                Ok(out) => {
                    let informed = out.informed.iter().filter(|&&i| i).count() as u64;
                    (
                        "chaos",
                        params,
                        out.report.metrics(),
                        Some(informed == *nodes as u64),
                        vec![
                            ("informed", Json::Num(informed)),
                            ("give_up", Json::Num(give_up as u64)),
                        ],
                        None,
                        None,
                        telemetry,
                    )
                }
                // A structured simulator error (a watchdog trip under
                // pathological loss, say) is a *failure*, not a result:
                // the supervised runner journals it as a
                // `qdc-campaign-failure/v1` record and the rest of the
                // grid keeps running.
                Err(e) => return Err(PointFailure::from_sim_error(index, &e)),
            }
        }
        PointSpec::Gadget { point, bandwidth } => {
            let exp = qdc_gadgets::campaign::run_point(point);
            let (host, sub) = embed_in_connected_host(exp.instance.graph());
            let run = verify_hamiltonian_cycle(&host, CongestConfig::classical(*bandwidth), &sub);
            // The verifier composes several complete simulator stages;
            // its Ledger is the natural metrics source (no single trace
            // exists, so max_bits_per_round is not defined here).
            let metrics = RunMetrics {
                rounds: run.ledger.rounds as u64,
                completed: 1,
                messages_sent: run.ledger.messages,
                bits_sent: run.ledger.bits,
                ..RunMetrics::default()
            };
            (
                "gadget",
                vec![
                    ("family", Json::Str(point.family.name().to_string())),
                    ("bits", Json::Num(point.bits as u64)),
                    ("seed", Json::Num(point.seed)),
                    ("bandwidth", Json::Num(*bandwidth as u64)),
                ],
                metrics,
                Some(run.accept == exp.expected_ham && exp.prediction_holds),
                vec![
                    ("expected_ham", Json::Bool(exp.expected_ham)),
                    ("verifier_accept", Json::Bool(run.accept)),
                    ("predicted_cycles", Json::Num(exp.predicted_cycles)),
                    ("stages", Json::Num(run.ledger.stages as u64)),
                ],
                None,
                None,
                None,
            )
        }
        PointSpec::Ex11 {
            bits,
            bandwidth,
            distance,
            quantum,
        } => {
            // The same deterministic instance family as the
            // `ex11_disjointness` bin: a pseudorandom `x`, its
            // complement as `y` (disjoint by construction), with one
            // planted intersection for b ≥ 256 so both verdicts occur
            // across the grid.
            let x = generate::random_bits(*bits, 100 + *bits as u64);
            let mut y: Vec<bool> = x.iter().map(|&v| !v).collect();
            if *bits >= 256 {
                y[*bits / 2] = x[*bits / 2];
            }
            let planted = x.iter().zip(&y).any(|(&a, &c)| a && c);
            let cfg = if *quantum {
                CongestConfig::quantum(*bandwidth)
            } else {
                CongestConfig::classical(*bandwidth)
            };
            // Path topology: D hops, D + 1 nodes, D edges.
            let (nodes, edges) = (*distance + 1, *distance);
            let ((run, report), telemetry) = match telemetry_mode {
                TelemetryMode::Off => (
                    run_ex11(
                        &x,
                        &y,
                        *distance,
                        cfg,
                        *quantum,
                        options,
                        &mut NullTelemetry,
                    ),
                    None,
                ),
                TelemetryMode::Exact => {
                    let mut profiler = RoundProfiler::new(nodes, edges, *bandwidth);
                    if *quantum {
                        profiler = profiler.with_quantum(false);
                    }
                    let out = run_ex11(&x, &y, *distance, cfg, *quantum, options, &mut profiler);
                    (out, Some(profiler.finish()))
                }
                TelemetryMode::Stream(scfg) => {
                    let (stage, file) = StreamStage::begin(index, scfg)?;
                    let mut sink = StreamSink::new(file, nodes, edges, *bandwidth, scfg.top_k)
                        .with_wall(scfg.with_wall);
                    if *quantum {
                        sink = sink.with_quantum(false);
                    }
                    let out = run_ex11(&x, &y, *distance, cfg, *quantum, options, &mut sink);
                    stage.commit(index, sink)?;
                    (out, None)
                }
            };
            let metrics = report.metrics();
            // The measured curve must match the closed form: the quantum
            // bounce is exact (2·D rounds per query); the classical
            // pipeline may spend bounded quiescence slack on top.
            let predicted = if *quantum {
                quantum_rounds(*bits, *distance)
            } else {
                classical_rounds(*bits, *distance, *bandwidth)
            } as u64;
            let rounds_ok = if *quantum {
                metrics.rounds == predicted
            } else {
                (predicted..=predicted + EX11_CLASSICAL_SLACK).contains(&metrics.rounds)
            };
            let mut extra = vec![
                ("predicted_rounds", Json::Num(predicted)),
                ("planted", Json::Bool(planted)),
            ];
            if *quantum {
                extra.push(("queries", Json::Num(predicted / (2 * *distance as u64))));
                extra.push((
                    "width",
                    Json::Num(qdc_algos::widths::bits_for(bits.saturating_sub(1) as u64) as u64),
                ));
            }
            (
                "ex11",
                vec![
                    ("bits", Json::Num(*bits as u64)),
                    ("bandwidth", Json::Num(*bandwidth as u64)),
                    ("distance", Json::Num(*distance as u64)),
                    (
                        "channel",
                        Json::Str(if *quantum { "quantum" } else { "classical" }.to_string()),
                    ),
                ],
                metrics,
                Some(run.disjoint != planted && rounds_ok),
                extra,
                None,
                None,
                telemetry,
            )
        }
    };
    let record = PointRecord {
        index,
        kind,
        params,
        metrics,
        accept,
        extra,
        error,
        wall_us: start.elapsed().as_micros() as u64,
    };
    Ok((record, trace, telemetry))
}

/// Renders one failure as a single `qdc-campaign-failure/v1` JSON
/// document with a stable field order. Failure records carry no
/// wall-clock field at all — every field is deterministic under the
/// determinism contract (`attempts` only varies when deadlines, which
/// are wall-clock by nature, are in play).
pub fn failure_json(campaign: &str, failure: &PointFailure) -> String {
    Json::obj([
        ("schema", Json::Str(FAILURE_SCHEMA.to_string())),
        ("campaign", Json::Str(campaign.to_string())),
        ("point", Json::Num(failure.index as u64)),
        ("kind", Json::Str(failure.kind.to_string())),
        ("retryable", Json::Bool(failure.retryable)),
        ("attempts", Json::Num(u64::from(failure.attempts))),
        ("error", Json::Str(failure.error.clone())),
    ])
    .to_json()
}

/// Strict conformance check for one `qdc-campaign-failure/v1` line: the
/// exact field list in the exact order, the schema tag, a non-empty
/// kind, a boolean retryability and an attempt count of at least one.
pub fn validate_failure_line(line: &str) -> Result<(), String> {
    let doc = crate::json::parse(line)?;
    crate::json::require_keys(
        &doc,
        &[
            "schema",
            "campaign",
            "point",
            "kind",
            "retryable",
            "attempts",
            "error",
        ],
        &[],
    )?;
    match doc.get("schema") {
        Some(Json::Str(s)) if s == FAILURE_SCHEMA => {}
        _ => return Err(format!("schema tag must be `{FAILURE_SCHEMA}`")),
    }
    for key in ["campaign", "error"] {
        if !matches!(doc.get(key), Some(Json::Str(_))) {
            return Err(format!("`{key}` must be a string"));
        }
    }
    match doc.get("kind") {
        Some(Json::Str(k)) if !k.is_empty() => {}
        _ => return Err("`kind` must be a non-empty string".into()),
    }
    if doc.get("point").and_then(Json::as_u64).is_none() {
        return Err("`point` must be an unsigned integer".into());
    }
    if !matches!(doc.get("retryable"), Some(Json::Bool(_))) {
        return Err("`retryable` must be a boolean".into());
    }
    match doc.get("attempts").and_then(Json::as_u64) {
        Some(n) if n >= 1 => {}
        _ => return Err("`attempts` must be an integer of at least 1".into()),
    }
    Ok(())
}

fn metrics_json(m: &RunMetrics) -> Json {
    Json::obj([
        ("rounds", Json::Num(m.rounds)),
        ("completed", Json::Num(m.completed)),
        ("messages_sent", Json::Num(m.messages_sent)),
        ("bits_sent", Json::Num(m.bits_sent)),
        ("max_bits_per_round", Json::Num(m.max_bits_per_round)),
        ("messages_dropped", Json::Num(m.messages_dropped)),
        ("nodes_crashed", Json::Num(m.nodes_crashed)),
        ("bits_corrupted", Json::Num(m.bits_corrupted)),
    ])
}

/// Renders one record as a single JSON document with a stable field
/// order. With `with_wall = false` the volatile `wall_us` field is
/// omitted — that form is the one covered by the byte-identical
/// determinism contract.
pub fn record_json(campaign: &str, rec: &PointRecord, with_wall: bool) -> String {
    let mut fields = vec![
        ("schema".to_string(), Json::Str(POINT_SCHEMA.to_string())),
        ("campaign".to_string(), Json::Str(campaign.to_string())),
        ("point".to_string(), Json::Num(rec.index as u64)),
        ("kind".to_string(), Json::Str(rec.kind.to_string())),
        (
            "params".to_string(),
            Json::Obj(
                rec.params
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.clone()))
                    .collect(),
            ),
        ),
        ("metrics".to_string(), metrics_json(&rec.metrics)),
        (
            "accept".to_string(),
            match rec.accept {
                Some(b) => Json::Bool(b),
                None => Json::Null,
            },
        ),
        (
            "extra".to_string(),
            Json::Obj(
                rec.extra
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.clone()))
                    .collect(),
            ),
        ),
        (
            "error".to_string(),
            match &rec.error {
                Some(e) => Json::Str(e.clone()),
                None => Json::Null,
            },
        ),
    ];
    if with_wall {
        fields.push(("wall_us".to_string(), Json::Num(rec.wall_us)));
    }
    Json::Obj(fields).to_json()
}

/// Strict conformance check for one `qdc-campaign-point/v1` record line:
/// the exact field list in the exact order (with `wall_us` as the only
/// optional, trailing field), the schema tag, integer-only metrics, and
/// the `accept`/`error` nullability rules. The campaign binary runs
/// this over every line it writes before declaring success.
pub fn validate_record_line(line: &str) -> Result<(), String> {
    let doc = crate::json::parse(line)?;
    crate::json::require_keys(
        &doc,
        &[
            "schema", "campaign", "point", "kind", "params", "metrics", "accept", "extra", "error",
        ],
        &["wall_us"],
    )?;
    match doc.get("schema") {
        Some(Json::Str(s)) if s == POINT_SCHEMA => {}
        _ => return Err(format!("schema tag must be `{POINT_SCHEMA}`")),
    }
    for key in ["campaign", "kind"] {
        if !matches!(doc.get(key), Some(Json::Str(_))) {
            return Err(format!("`{key}` must be a string"));
        }
    }
    if doc.get("point").and_then(Json::as_u64).is_none() {
        return Err("`point` must be an unsigned integer".into());
    }
    for key in ["params", "extra"] {
        if !matches!(doc.get(key), Some(Json::Obj(_))) {
            return Err(format!("`{key}` must be an object"));
        }
    }
    let metrics = doc.get("metrics").expect("checked above");
    crate::json::require_keys(
        metrics,
        &[
            "rounds",
            "completed",
            "messages_sent",
            "bits_sent",
            "max_bits_per_round",
            "messages_dropped",
            "nodes_crashed",
            "bits_corrupted",
        ],
        &[],
    )
    .map_err(|e| format!("metrics: {e}"))?;
    if let Json::Obj(fields) = metrics {
        for (k, v) in fields {
            if v.as_u64().is_none() {
                return Err(format!("metric `{k}` must be an unsigned integer"));
            }
        }
    }
    if !matches!(doc.get("accept"), Some(Json::Bool(_) | Json::Null)) {
        return Err("`accept` must be a boolean or null".into());
    }
    if !matches!(doc.get("error"), Some(Json::Str(_) | Json::Null)) {
        return Err("`error` must be a string or null".into());
    }
    if let Some(w) = doc.get("wall_us") {
        if w.as_u64().is_none() {
            return Err("`wall_us` must be an unsigned integer".into());
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use crate::spec::builtin;

    #[test]
    fn point_simthm_record_matches_direct_run() {
        let spec = builtin("simthm_smoke").expect("builtin");
        let points = spec.points();
        let (rec, trace) = execute_point(0, &points[0]).expect("point runs");
        let PointSpec::SimThm(p) = &points[0] else {
            panic!("smoke grid is simthm");
        };
        let direct = qdc_simthm::campaign::run_point(p);
        assert_eq!(rec.metrics, direct.metrics);
        assert_eq!(rec.accept, Some(direct.within_budget));
        assert_eq!(trace.expect("simthm is traced").rounds, direct.trace.rounds);
        assert!(rec.error.is_none());
    }

    #[test]
    fn point_chaos_record_reports_dissemination() {
        let spec = PointSpec::Chaos {
            nodes: 12,
            extra_edges: 4,
            drop_pm: 200,
            seed: 3,
            bandwidth: 8,
        };
        let (rec, trace) = execute_point(7, &spec).expect("point runs");
        assert_eq!(rec.kind, "chaos");
        assert_eq!(rec.index, 7);
        assert!(trace.is_none());
        assert_eq!(rec.accept, Some(true), "error: {:?}", rec.error);
        assert!(
            rec.metrics.messages_dropped > 0,
            "20% loss must drop something"
        );
    }

    #[test]
    fn point_gadget_record_cross_checks_verifier() {
        let spec = PointSpec::Gadget {
            point: qdc_gadgets::GadgetPoint {
                family: qdc_gadgets::GadgetFamily::Ipmod3,
                bits: 4,
                seed: 1,
            },
            bandwidth: 32,
        };
        let (rec, _) = execute_point(0, &spec).expect("point runs");
        assert_eq!(rec.accept, Some(true));
        assert!(rec.metrics.rounds > 0);
        assert!(rec.metrics.bits_sent > 0);
    }

    #[test]
    fn point_telemetry_observes_without_perturbing() {
        let spec = builtin("simthm_smoke").expect("builtin");
        let point = &spec.points()[0];
        let (plain, _) = execute_point(0, point).expect("point runs");
        let (observed, _, telemetry) = execute_point_with_telemetry(0, point).expect("point runs");
        let telemetry = telemetry.expect("simthm points are profiled");
        assert_eq!(
            record_json("t", &plain, false),
            record_json("t", &observed, false)
        );
        assert_eq!(telemetry.total_messages(), observed.metrics.messages_sent);
        assert_eq!(telemetry.total_bits(), observed.metrics.bits_sent);
        assert_eq!(telemetry.rounds.len() as u64, observed.metrics.rounds);
        assert!(
            telemetry.classified,
            "simthm profiles carry the traffic split"
        );
    }

    #[test]
    fn point_chaos_telemetry_attributes_faults() {
        let spec = PointSpec::Chaos {
            nodes: 12,
            extra_edges: 4,
            drop_pm: 200,
            seed: 3,
            bandwidth: 8,
        };
        let (plain, _) = execute_point(7, &spec).expect("point runs");
        let (rec, _, telemetry) = execute_point_with_telemetry(7, &spec).expect("point runs");
        let telemetry = telemetry.expect("chaos points are profiled");
        assert_eq!(
            record_json("t", &plain, false),
            record_json("t", &rec, false)
        );
        assert_eq!(telemetry.total_dropped(), rec.metrics.messages_dropped);
        assert_eq!(telemetry.total_bits(), rec.metrics.bits_sent);
        assert!(!telemetry.classified, "chaos hosts have no highway layout");
    }

    #[test]
    fn point_gadget_has_no_single_run_to_profile() {
        let spec = PointSpec::Gadget {
            point: qdc_gadgets::GadgetPoint {
                family: qdc_gadgets::GadgetFamily::GapEq,
                bits: 4,
                seed: 2,
            },
            bandwidth: 32,
        };
        let (_, _, telemetry) = execute_point_with_telemetry(0, &spec).expect("point runs");
        assert!(telemetry.is_none());
    }

    #[test]
    fn point_validator_accepts_real_records_and_rejects_mutants() {
        let spec = PointSpec::Chaos {
            nodes: 8,
            extra_edges: 2,
            drop_pm: 0,
            seed: 1,
            bandwidth: 4,
        };
        let (rec, _) = execute_point(2, &spec).expect("point runs");
        validate_record_line(&record_json("t", &rec, false)).expect("deterministic form conforms");
        validate_record_line(&record_json("t", &rec, true)).expect("wall form conforms");

        let line = record_json("t", &rec, true);
        for (broken, why) in [
            (
                line.replace("qdc-campaign-point/v1", "qdc-campaign-point/v2"),
                "wrong schema tag",
            ),
            (
                line.replace("\"accept\":true", "\"accept\":1"),
                "non-boolean accept",
            ),
            (
                line.replace("\"rounds\"", "\"rundes\""),
                "unknown metric key",
            ),
            (
                line.replace("\"wall_us\":", "\"wall_ms\":"),
                "unknown trailing key",
            ),
            (
                line.replace("\"point\":2", "\"point\":2.5"),
                "non-integer point",
            ),
            (line[..line.len() - 4].to_string(), "truncated document"),
        ] {
            assert!(
                validate_record_line(&broken).is_err(),
                "should reject {why}: {broken}"
            );
        }
    }

    #[test]
    fn point_watchdog_trip_maps_to_a_retryable_failure() {
        // Satellite regression: a WatchdogTripped inside a point must
        // become a structured, retryable failure record — never an
        // abort. The chaos Err arm routes through from_sim_error, which
        // this pins for the watchdog variant.
        let e = qdc_congest::SimError::WatchdogTripped { rounds: 40 };
        let f = PointFailure::from_sim_error(9, &e);
        assert_eq!(f.index, 9);
        assert_eq!(f.kind, "watchdog_tripped");
        assert!(f.retryable, "watchdog trips are transient by taxonomy");
        assert_eq!(f.attempts, 1);
        assert!(f.error.contains("watchdog tripped"));
        validate_failure_line(&failure_json("t", &f)).expect("failure line conforms");
    }

    #[test]
    fn point_panic_payloads_classify_back_to_sim_error_kinds() {
        // The panicking simulator APIs emit exactly the SimError Display
        // text, so a caught panic recovers the structured kind…
        let budget = qdc_congest::SimError::BudgetExceeded { bits: 9, budget: 1 };
        let payload: Box<dyn std::any::Any + Send> = Box::new(budget.to_string());
        let f = PointFailure::from_panic(4, payload.as_ref());
        assert_eq!(f.kind, "budget_exceeded");
        assert!(!f.retryable, "protocol violations are permanent");
        // …while a foreign panic stays generic and transient.
        let payload: Box<dyn std::any::Any + Send> = Box::new("index out of bounds");
        let f = PointFailure::from_panic(4, payload.as_ref());
        assert_eq!(f.kind, "panic");
        assert!(f.retryable);
        // Non-string payloads still produce a message.
        let payload: Box<dyn std::any::Any + Send> = Box::new(17u32);
        let f = PointFailure::from_panic(4, payload.as_ref());
        assert_eq!(f.error, "panic with non-string payload");
    }

    #[test]
    fn point_failure_validator_accepts_real_lines_and_rejects_mutants() {
        let f = PointFailure::deadline(5, 250);
        assert_eq!(f.kind, "deadline");
        assert!(f.retryable);
        let line = failure_json("t", &f);
        validate_failure_line(&line).expect("real failure line conforms");
        for (broken, why) in [
            (
                line.replace("qdc-campaign-failure/v1", "qdc-campaign-failure/v0"),
                "wrong schema tag",
            ),
            (
                line.replace("\"retryable\":true", "\"retryable\":1"),
                "non-boolean retryable",
            ),
            (
                line.replace("\"attempts\":1", "\"attempts\":0"),
                "zero attempts",
            ),
            (
                line.replace("\"kind\":\"deadline\"", "\"kind\":\"\""),
                "empty kind",
            ),
            (line[..line.len() - 2].to_string(), "truncated document"),
        ] {
            assert!(
                validate_failure_line(&broken).is_err(),
                "should reject {why}: {broken}"
            );
        }
    }

    #[test]
    fn point_record_json_is_stable_and_parses() {
        let spec = PointSpec::Chaos {
            nodes: 8,
            extra_edges: 2,
            drop_pm: 0,
            seed: 1,
            bandwidth: 4,
        };
        let (rec, _) = execute_point(2, &spec).expect("point runs");
        let deterministic = record_json("t", &rec, false);
        assert_eq!(deterministic, record_json("t", &rec, false));
        assert!(!deterministic.contains("wall_us"));
        let with_wall = record_json("t", &rec, true);
        let doc = json::parse(&with_wall).expect("record is valid JSON");
        assert_eq!(doc.get("point").and_then(Json::as_u64), Some(2));
        assert_eq!(doc.get("kind"), Some(&Json::Str("chaos".into())));
        assert!(doc.get("wall_us").is_some());
        let metrics = doc.get("metrics").expect("metrics present");
        assert_eq!(
            metrics.get("messages_dropped").and_then(Json::as_u64),
            Some(0)
        );
    }
}
