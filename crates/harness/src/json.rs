//! A minimal JSON value, writer and parser — hand-rolled, no serde.
//!
//! The campaign subsystem emits exactly one dialect of JSON: objects
//! with string keys in a **fixed field order**, arrays, strings,
//! unsigned integers, booleans and `null`. No floats ever appear (all
//! metrics are integral, probabilities are stored per-mille), which is
//! what makes "byte-identical aggregate" a meaningful contract — there
//! is no formatting ambiguity left.
//!
//! The parser exists so the harness can *prove* its own output is
//! well-formed (the campaign binary re-parses every line it wrote, and
//! the CI smoke job relies on that), and so tests can round-trip
//! records structurally.

use std::fmt::Write as _;

/// A JSON value restricted to what campaign records contain.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (the only number shape campaigns emit).
    Num(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved and is the emission
    /// order, so serialization is deterministic.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn obj<const N: usize>(fields: [(&str, Json); N]) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Looks up a key in an object (`None` for other shapes or missing
    /// keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Serializes compactly (no whitespace), deterministically.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Checks that `doc` is an object whose key sequence is exactly
/// `required` (in order), optionally followed — still in order — by a
/// prefix of `optional_tail`. This is the primitive behind the record
/// and summary conformance validators: field *order* is part of the
/// byte-identical output contract, so a reordered key is an error, not
/// a stylistic variation.
pub fn require_keys(doc: &Json, required: &[&str], optional_tail: &[&str]) -> Result<(), String> {
    let Json::Obj(fields) = doc else {
        return Err("expected a JSON object".into());
    };
    let keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
    for (i, want) in required.iter().enumerate() {
        match keys.get(i) {
            Some(k) if k == want => {}
            Some(k) => return Err(format!("field {i}: expected key `{want}`, found `{k}`")),
            None => return Err(format!("missing required key `{want}`")),
        }
    }
    let tail = &keys[required.len()..];
    if tail.len() > optional_tail.len() {
        return Err(format!(
            "unexpected trailing key `{}`",
            tail[optional_tail.len()]
        ));
    }
    for (k, want) in tail.iter().zip(optional_tail) {
        if k != want {
            return Err(format!("unexpected key `{k}` (expected optional `{want}`)"));
        }
    }
    Ok(())
}

/// Deepest accepted array/object nesting. Campaign documents are at
/// most a handful of levels deep; the bound exists because the parser
/// recurses per level, so without it an untrusted document of a few
/// kilobytes of `[` could overflow the stack of whatever thread parses
/// it (the service parses request bodies on 2 MiB connection threads).
pub const MAX_DEPTH: usize = 64;

/// Parses one JSON document, rejecting trailing garbage and nesting
/// deeper than [`MAX_DEPTH`].
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
        depth: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn descend(&mut self) -> Result<(), String> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(format!(
                "nesting deeper than {MAX_DEPTH} levels at byte {}",
                self.pos
            ));
        }
        Ok(())
    }
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, lit: &str) -> Result<(), String> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(format!("expected `{lit}` at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.eat("null").map(|()| Json::Null),
            Some(b't') => self.eat("true").map(|()| Json::Bool(true)),
            Some(b'f') => self.eat("false").map(|()| Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b.is_ascii_digit() => self.number(),
            Some(b) => Err(format!("unexpected byte `{}` at {}", b as char, self.pos)),
            None => Err("unexpected end of input".into()),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        self.skip_ws();
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(u8::is_ascii_digit) {
            self.pos += 1;
        }
        // Only `0` itself may start with a zero — the canonical form the
        // byte-exact validators rely on (`07` must not round-trip).
        if self.pos - start > 1 && self.bytes[start] == b'0' {
            return Err(format!("leading zero in number at byte {start}"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("digits are ASCII")
            .parse()
            .map(Json::Num)
            .map_err(|_| format!("number out of range at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat("\"")?;
        let mut s = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b't') => s.push('\t'),
                        Some(b'r') => s.push('\r'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            s.push(char::from_u32(code).ok_or("bad \\u code point")?);
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(&b) if b < 0x80 => {
                    s.push(b as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8: copy the whole code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8 in string")?;
                    let c = rest.chars().next().expect("non-empty");
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.descend()?;
        self.eat("[")?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.eat("]")?;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            if self.peek() == Some(b',') {
                self.eat(",")?;
            } else {
                self.eat("]")?;
                self.depth -= 1;
                return Ok(Json::Arr(items));
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.descend()?;
        self.eat("{")?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.eat("}")?;
            self.depth -= 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            let key = self.string()?;
            self.eat(":")?;
            let value = self.value()?;
            fields.push((key, value));
            if self.peek() == Some(b',') {
                self.eat(",")?;
            } else {
                self.eat("}")?;
                self.depth -= 1;
                return Ok(Json::Obj(fields));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trips_structurally_and_byte_exactly() {
        let v = Json::obj([
            ("schema", Json::Str("qdc-campaign/v1".into())),
            ("points", Json::Num(32)),
            ("ok", Json::Bool(true)),
            ("err", Json::Null),
            (
                "list",
                Json::Arr(vec![Json::Num(1), Json::Num(2), Json::Num(u64::MAX)]),
            ),
            ("nested", Json::obj([("k", Json::Str("v".into()))])),
        ]);
        let text = v.to_json();
        let back = parse(&text).expect("parses");
        assert_eq!(back, v);
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn json_escapes_round_trip() {
        let v = Json::Str("a\"b\\c\nd\te\u{1}ü".into());
        let back = parse(&v.to_json()).expect("parses");
        assert_eq!(back, v);
    }

    #[test]
    fn json_accessors() {
        let v = parse("{\"a\": 3, \"b\": [true, null]}").expect("parses");
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(3));
        assert_eq!(
            v.get("b"),
            Some(&Json::Arr(vec![Json::Bool(true), Json::Null]))
        );
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn json_require_keys_enforces_exact_order() {
        let doc = Json::obj([
            ("a", Json::Num(1)),
            ("b", Json::Num(2)),
            ("wall", Json::Num(3)),
        ]);
        require_keys(&doc, &["a", "b"], &["wall"]).expect("exact match with optional tail");
        require_keys(&doc, &["a", "b", "wall"], &[]).expect("tail may be required instead");
        assert!(
            require_keys(&doc, &["b", "a"], &["wall"]).is_err(),
            "order matters"
        );
        assert!(
            require_keys(&doc, &["a", "b"], &[]).is_err(),
            "unexpected trailing key"
        );
        assert!(
            require_keys(&doc, &["a", "b", "wall", "z"], &[]).is_err(),
            "missing key"
        );
        assert!(
            require_keys(&doc, &["a", "b"], &["other"]).is_err(),
            "wrong optional key"
        );
        assert!(require_keys(&Json::Num(1), &[], &[]).is_err(), "non-object");
    }

    #[test]
    fn json_bounds_nesting_depth() {
        // Exactly at the bound: fine, both pure arrays and mixed shapes.
        let at_limit = format!("{}1{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        parse(&at_limit).expect("MAX_DEPTH levels parse");
        let mixed = format!(
            "{}{{\"k\":1}}{}",
            "[".repeat(MAX_DEPTH - 1),
            "]".repeat(MAX_DEPTH - 1)
        );
        parse(&mixed).expect("objects count toward the same bound");
        // Depth is the *current* nesting, not a lifetime total: closing
        // a bracket returns its level to the budget.
        let siblings = format!("[{}1]", "[1],".repeat(MAX_DEPTH * 4));
        parse(&siblings).expect("siblings do not accumulate depth");
        // One past the bound: rejected with a depth error, and — the
        // point of the bound — a pathological body must not overflow
        // the stack. 32k unclosed brackets would have recursed 32k
        // frames deep before this fix.
        let over = format!(
            "{}1{}",
            "[".repeat(MAX_DEPTH + 1),
            "]".repeat(MAX_DEPTH + 1)
        );
        let err = parse(&over).expect_err("MAX_DEPTH + 1 rejected");
        assert!(err.contains("nesting deeper"), "{err}");
        let bomb = "[".repeat(32 * 1024);
        let err = parse(&bomb).expect_err("deep bomb rejected, no overflow");
        assert!(err.contains("nesting deeper"), "{err}");
        let obj_bomb = "{\"k\":".repeat(32 * 1024);
        let err = parse(&obj_bomb).expect_err("object bomb rejected");
        assert!(err.contains("nesting deeper"), "{err}");
    }

    #[test]
    fn json_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\":1} extra",
            "\"unterminated",
            "01x",
            "07",
            "-5",
        ] {
            assert!(parse(bad).is_err(), "should reject: {bad}");
        }
    }
}
