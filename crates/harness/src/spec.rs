//! Declarative campaign specifications.
//!
//! A [`CampaignSpec`] names a grid of experiment points — a Γ×L
//! simulation-theorem sweep, a chaos seed ensemble, or a gadget
//! instance sweep — without saying anything about *how* it runs. The
//! runner (see [`crate::runner`]) expands the grid into a flat,
//! deterministically ordered `Vec<PointSpec>` via [`CampaignSpec::points`]
//! and shards that list across worker threads.
//!
//! Specs are validated **up front** ([`CampaignSpec::validate`]): every
//! way a grid can be degenerate — zero threads, an empty axis, Γ = 0, an
//! L the network builder would reject, a drop probability above 1 — maps
//! to a distinct [`CampaignError`] variant, so misconfigurations fail
//! with a structured message before any thread is spawned.

use qdc_gadgets::{GadgetFamily, GadgetPoint};
use qdc_simthm::SimThmPoint;

/// Schema tag stamped on every aggregate summary document.
pub const CAMPAIGN_SCHEMA: &str = "qdc-campaign/v1";
/// Schema tag stamped on every per-point JSONL record.
pub const POINT_SCHEMA: &str = "qdc-campaign-point/v1";
/// Schema tag stamped on every per-point failure record (a point whose
/// every attempt panicked, errored or exceeded its deadline).
pub const FAILURE_SCHEMA: &str = "qdc-campaign-failure/v1";

/// Why a campaign specification (or its CLI invocation) was rejected.
///
/// Every variant corresponds to exactly one degenerate input, checked
/// before any experiment executes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CampaignError {
    /// The campaign name is empty (it names output files and records).
    EmptyName,
    /// A worker pool of zero threads can run nothing.
    ZeroThreads,
    /// A retry budget of zero attempts can run nothing (`max_attempts`
    /// counts the first try too, so it must be at least 1).
    ZeroAttempts,
    /// A grid axis is empty, so the campaign has no points. The payload
    /// names the empty axis (e.g. `"gammas"`).
    EmptyGrid(&'static str),
    /// A simulation-theorem point requested Γ = 0 (the network builder
    /// needs at least one path).
    ZeroGamma,
    /// A simulation-theorem point requested an unusable path length
    /// (the builder needs `L ≥ 3`).
    BadLength(usize),
    /// A bandwidth of zero bits can carry no message (chaos ensembles
    /// additionally need `B ≥ 2` for their ack words, also checked here).
    BadBandwidth(usize),
    /// A chaos drop probability above 1000 per-mille (i.e. > 1.0).
    BadDropProb(u32),
    /// A chaos ensemble over fewer than two nodes has nothing to
    /// broadcast to.
    TooFewNodes(usize),
    /// A gadget point requested zero input bits (the reductions need at
    /// least one gadget in the chain).
    ZeroBits,
    /// A disjointness point requested a zero-hop path (the two players
    /// must be distinct nodes, so `D ≥ 1`).
    ZeroDistance,
    /// The records path and the summary path collide, so one output
    /// would silently clobber the other.
    OutputCollision(String),
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::EmptyName => write!(f, "campaign name must not be empty"),
            CampaignError::ZeroThreads => write!(f, "thread count must be at least 1"),
            CampaignError::ZeroAttempts => {
                write!(f, "retry budget must allow at least 1 attempt")
            }
            CampaignError::EmptyGrid(axis) => {
                write!(f, "grid axis `{axis}` is empty: the campaign has no points")
            }
            CampaignError::ZeroGamma => write!(f, "gamma must be at least 1"),
            CampaignError::BadLength(l) => {
                write!(
                    f,
                    "path length L = {l} is unusable: the network needs L >= 3"
                )
            }
            CampaignError::BadBandwidth(b) => {
                write!(
                    f,
                    "bandwidth B = {b} bits is too small for this campaign kind"
                )
            }
            CampaignError::BadDropProb(pm) => {
                write!(f, "drop probability {pm} per-mille exceeds 1000 (i.e. 1.0)")
            }
            CampaignError::TooFewNodes(n) => {
                write!(f, "chaos ensemble needs at least 2 nodes, got {n}")
            }
            CampaignError::ZeroBits => write!(f, "gadget input length must be at least 1 bit"),
            CampaignError::ZeroDistance => {
                write!(f, "disjointness path distance must be at least 1 hop")
            }
            CampaignError::OutputCollision(path) => {
                write!(f, "records and summary would both be written to `{path}`")
            }
        }
    }
}

impl std::error::Error for CampaignError {}

/// The experiment grid of a campaign — one variant per experiment kind.
///
/// Axes are cartesian-multiplied by [`CampaignSpec::points`]; the
/// expansion order (outer axis first, declared order within each axis)
/// is part of the determinism contract because point indices name
/// records in the output.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CampaignGrid {
    /// Γ×L sweep of simulation-theorem networks (Theorem 3.5 audit).
    SimThm {
        /// Requested path counts Γ.
        gammas: Vec<usize>,
        /// Requested path lengths L (each rounded up to `2^k + 1`).
        lengths: Vec<usize>,
        /// CONGEST bandwidth in qubits.
        bandwidth: usize,
    },
    /// Seed ensemble of robust broadcasts under fault injection.
    Chaos {
        /// Node count of the random connected host graph.
        nodes: usize,
        /// Extra edges beyond the spanning tree.
        extra_edges: usize,
        /// Drop probabilities in integer per-mille (`250` = 0.25) —
        /// integers so records and aggregates never contain floats.
        drop_pm: Vec<u32>,
        /// Fault-plan seeds.
        seeds: Vec<u64>,
        /// CONGEST bandwidth in bits (must be ≥ 2).
        bandwidth: usize,
    },
    /// Sweep of gadget reductions cross-checked by a distributed verifier.
    Gadgets {
        /// Input lengths `n` of the two-party problems.
        bit_sizes: Vec<usize>,
        /// Instance seeds.
        seeds: Vec<u64>,
        /// CONGEST bandwidth for the verifier runs.
        bandwidth: usize,
    },
    /// Example 1.1 separation sweep: classical streaming vs distributed
    /// Grover disjointness over b × B × D, on both channel kinds.
    Ex11 {
        /// Set sizes `b` of the disjointness instances.
        bits: Vec<usize>,
        /// CONGEST bandwidths `B` (bits classically, qubits quantumly;
        /// every `B` must fit the widest `⌈log₂ b⌉` query register).
        bandwidths: Vec<usize>,
        /// Path distances `D` between the two players.
        distances: Vec<usize>,
    },
}

/// One fully expanded experiment point, ready to execute.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PointSpec {
    /// One Γ×L cell (see [`qdc_simthm::campaign`]).
    SimThm(SimThmPoint),
    /// One seeded robust-broadcast run under fault injection.
    Chaos {
        /// Node count of the host graph.
        nodes: usize,
        /// Extra edges beyond the spanning tree.
        extra_edges: usize,
        /// Drop probability in per-mille.
        drop_pm: u32,
        /// Seed shared by the graph generator and the fault plan.
        seed: u64,
        /// CONGEST bandwidth in bits.
        bandwidth: usize,
    },
    /// One seeded gadget instance plus distributed verification.
    Gadget {
        /// The reduction point (see [`qdc_gadgets::campaign`]).
        point: GadgetPoint,
        /// CONGEST bandwidth for the verifier.
        bandwidth: usize,
    },
    /// One Example 1.1 disjointness cell: one protocol (classical
    /// streaming or distributed Grover) on one (b, B, D) triple.
    Ex11 {
        /// Set size `b`.
        bits: usize,
        /// CONGEST bandwidth `B`.
        bandwidth: usize,
        /// Path distance `D`.
        distance: usize,
        /// `true` runs the quantum (Grover) protocol on a quantum
        /// channel; `false` the classical streaming protocol.
        quantum: bool,
    },
}

/// A named, declarative experiment campaign.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CampaignSpec {
    /// Campaign name: names output files and is stamped on every record.
    pub name: String,
    /// The experiment grid.
    pub grid: CampaignGrid,
}

impl CampaignSpec {
    /// Checks the spec for every known degenerate input.
    ///
    /// Returns the **first** problem found, in a fixed check order, so
    /// error messages are deterministic.
    pub fn validate(&self) -> Result<(), CampaignError> {
        if self.name.is_empty() {
            return Err(CampaignError::EmptyName);
        }
        match &self.grid {
            CampaignGrid::SimThm {
                gammas,
                lengths,
                bandwidth,
            } => {
                if gammas.is_empty() {
                    return Err(CampaignError::EmptyGrid("gammas"));
                }
                if lengths.is_empty() {
                    return Err(CampaignError::EmptyGrid("lengths"));
                }
                if gammas.contains(&0) {
                    return Err(CampaignError::ZeroGamma);
                }
                if let Some(&l) = lengths.iter().find(|&&l| l < 3) {
                    return Err(CampaignError::BadLength(l));
                }
                if *bandwidth == 0 {
                    return Err(CampaignError::BadBandwidth(*bandwidth));
                }
            }
            CampaignGrid::Chaos {
                nodes,
                extra_edges: _,
                drop_pm,
                seeds,
                bandwidth,
            } => {
                if drop_pm.is_empty() {
                    return Err(CampaignError::EmptyGrid("drop_pm"));
                }
                if seeds.is_empty() {
                    return Err(CampaignError::EmptyGrid("seeds"));
                }
                if *nodes < 2 {
                    return Err(CampaignError::TooFewNodes(*nodes));
                }
                if let Some(&pm) = drop_pm.iter().find(|&&pm| pm > 1000) {
                    return Err(CampaignError::BadDropProb(pm));
                }
                // robust_broadcast sends 2-bit token/ack words.
                if *bandwidth < 2 {
                    return Err(CampaignError::BadBandwidth(*bandwidth));
                }
            }
            CampaignGrid::Gadgets {
                bit_sizes,
                seeds,
                bandwidth,
            } => {
                if bit_sizes.is_empty() {
                    return Err(CampaignError::EmptyGrid("bit_sizes"));
                }
                if seeds.is_empty() {
                    return Err(CampaignError::EmptyGrid("seeds"));
                }
                if bit_sizes.contains(&0) {
                    return Err(CampaignError::ZeroBits);
                }
                if *bandwidth == 0 {
                    return Err(CampaignError::BadBandwidth(*bandwidth));
                }
            }
            CampaignGrid::Ex11 {
                bits,
                bandwidths,
                distances,
            } => {
                if bits.is_empty() {
                    return Err(CampaignError::EmptyGrid("bits"));
                }
                if bandwidths.is_empty() {
                    return Err(CampaignError::EmptyGrid("bandwidths"));
                }
                if distances.is_empty() {
                    return Err(CampaignError::EmptyGrid("distances"));
                }
                if bits.contains(&0) {
                    return Err(CampaignError::ZeroBits);
                }
                if distances.contains(&0) {
                    return Err(CampaignError::ZeroDistance);
                }
                // Every bandwidth must carry the widest Grover query
                // register — one ⌈log₂ b⌉-qubit message per round trip.
                let width = bits
                    .iter()
                    .map(|&b| qdc_algos::widths::bits_for(b.saturating_sub(1) as u64))
                    .max()
                    .expect("bits is non-empty");
                if let Some(&bw) = bandwidths.iter().find(|&&bw| bw < width) {
                    return Err(CampaignError::BadBandwidth(bw));
                }
            }
        }
        Ok(())
    }

    /// The size of the expanded grid, computed arithmetically from the
    /// axis lengths — never by materializing the cross product. This is
    /// what admission control must call: a hostile spec with two
    /// multi-thousand-entry axes describes a multi-million-point grid,
    /// and sizing it via [`points`](Self::points) would allocate all of
    /// it before the quota check ever rejects. Saturates at `u64::MAX`
    /// (any saturated value is far beyond every quota anyway).
    pub fn point_count(&self) -> u64 {
        fn product(a: usize, b: usize) -> u64 {
            (a as u64).saturating_mul(b as u64)
        }
        match &self.grid {
            CampaignGrid::SimThm {
                gammas, lengths, ..
            } => product(gammas.len(), lengths.len()),
            CampaignGrid::Chaos { drop_pm, seeds, .. } => product(drop_pm.len(), seeds.len()),
            // Two gadget families per (bits, seed) cell.
            CampaignGrid::Gadgets {
                bit_sizes, seeds, ..
            } => product(bit_sizes.len(), seeds.len()).saturating_mul(2),
            // Two channel kinds per (b, B, D) cell.
            CampaignGrid::Ex11 {
                bits,
                bandwidths,
                distances,
            } => product(bits.len(), bandwidths.len())
                .saturating_mul(distances.len() as u64)
                .saturating_mul(2),
        }
    }

    /// Expands the grid into a flat, deterministically ordered point
    /// list. Point `i` of this list is record `"point": i` in the
    /// campaign output, on any thread count.
    pub fn points(&self) -> Vec<PointSpec> {
        let mut out = Vec::new();
        match &self.grid {
            CampaignGrid::SimThm {
                gammas,
                lengths,
                bandwidth,
            } => {
                for &gamma in gammas {
                    for &l in lengths {
                        out.push(PointSpec::SimThm(SimThmPoint {
                            gamma,
                            l,
                            bandwidth: *bandwidth,
                        }));
                    }
                }
            }
            CampaignGrid::Chaos {
                nodes,
                extra_edges,
                drop_pm,
                seeds,
                bandwidth,
            } => {
                for &pm in drop_pm {
                    for &seed in seeds {
                        out.push(PointSpec::Chaos {
                            nodes: *nodes,
                            extra_edges: *extra_edges,
                            drop_pm: pm,
                            seed,
                            bandwidth: *bandwidth,
                        });
                    }
                }
            }
            CampaignGrid::Gadgets {
                bit_sizes,
                seeds,
                bandwidth,
            } => {
                for family in [GadgetFamily::Ipmod3, GadgetFamily::GapEq] {
                    for &bits in bit_sizes {
                        for &seed in seeds {
                            out.push(PointSpec::Gadget {
                                point: GadgetPoint { family, bits, seed },
                                bandwidth: *bandwidth,
                            });
                        }
                    }
                }
            }
            CampaignGrid::Ex11 {
                bits,
                bandwidths,
                distances,
            } => {
                // Channel kind is the outermost axis: the full classical
                // curve first, then the full quantum curve, so record
                // index `i` and `i + count/2` are the matched pair of
                // one (b, B, D) cell.
                for quantum in [false, true] {
                    for &b in bits {
                        for &bandwidth in bandwidths {
                            for &distance in distances {
                                out.push(PointSpec::Ex11 {
                                    bits: b,
                                    bandwidth,
                                    distance,
                                    quantum,
                                });
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

/// Rejects a records/summary path pair that would clobber each other.
pub fn validate_output_paths(records: &str, summary: &str) -> Result<(), CampaignError> {
    if records == summary {
        return Err(CampaignError::OutputCollision(records.to_string()));
    }
    Ok(())
}

/// The built-in campaigns, selectable by name in the `campaign` binary.
pub fn builtin(name: &str) -> Option<CampaignSpec> {
    let spec = match name {
        // 2×2 grid: small enough for CI smoke runs.
        "simthm_smoke" => CampaignSpec {
            name: name.to_string(),
            grid: CampaignGrid::SimThm {
                gammas: vec![4, 6],
                lengths: vec![9, 17],
                bandwidth: 16,
            },
        },
        // 8×4 = 32 points: the headline Theorem 3.5 audit grid.
        "simthm_grid" => CampaignSpec {
            name: name.to_string(),
            grid: CampaignGrid::SimThm {
                gammas: vec![7, 11, 15, 19, 23, 27, 31, 35],
                lengths: vec![17, 33, 65, 129],
                bandwidth: 32,
            },
        },
        // 4×8 = 32 points: robust broadcast under increasing loss.
        "chaos_ensemble" => CampaignSpec {
            name: name.to_string(),
            grid: CampaignGrid::Chaos {
                nodes: 24,
                extra_edges: 6,
                drop_pm: vec![0, 100, 200, 300],
                seeds: (1..=8).collect(),
                bandwidth: 8,
            },
        },
        // 1×2 grid: the CI telemetry-smoke job runs this with
        // `--telemetry-dir` and cross-checks profiles against records.
        "telemetry_smoke" => CampaignSpec {
            name: name.to_string(),
            grid: CampaignGrid::SimThm {
                gammas: vec![4],
                lengths: vec![9, 17],
                bandwidth: 16,
            },
        },
        // 2 families × 4 sizes × 4 seeds = 32 points.
        "gadget_sweep" => CampaignSpec {
            name: name.to_string(),
            grid: CampaignGrid::Gadgets {
                bit_sizes: vec![4, 6, 8, 10],
                seeds: vec![1, 2, 3, 4],
                bandwidth: 32,
            },
        },
        // 2 channels × 4 sizes × 2 bandwidths × 2 distances = 32 points:
        // the Example 1.1 classical-vs-quantum separation sweep. The
        // crossover sits at b = 4096, D = 2, where 2·D·queries = 204
        // quantum rounds undercut the ⌈b/B⌉ + D − 1 classical pipeline.
        "ex11_separation" => CampaignSpec {
            name: name.to_string(),
            grid: CampaignGrid::Ex11 {
                bits: vec![64, 256, 1024, 4096],
                bandwidths: vec![12, 16],
                distances: vec![2, 4],
            },
        },
        _ => return None,
    };
    Some(spec)
}

/// Names of all built-in campaigns, in presentation order.
pub fn builtin_names() -> [&'static str; 6] {
    [
        "simthm_smoke",
        "simthm_grid",
        "chaos_ensemble",
        "gadget_sweep",
        "telemetry_smoke",
        "ex11_separation",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simthm_spec() -> CampaignSpec {
        builtin("simthm_smoke").expect("builtin")
    }

    #[test]
    fn spec_builtins_validate_and_expand() {
        for name in builtin_names() {
            let spec = builtin(name).expect("known builtin");
            spec.validate().expect("builtin specs are valid");
            let points = spec.points();
            assert!(!points.is_empty(), "{name} expands to no points");
            if !name.ends_with("_smoke") {
                assert!(points.len() >= 32, "{name} has {} points", points.len());
            }
        }
        assert!(builtin("no_such_campaign").is_none());
    }

    #[test]
    fn spec_point_count_matches_expansion_without_expanding() {
        // The arithmetic count must agree with the materialized grid on
        // every builtin (all three grid shapes are covered).
        for name in builtin_names() {
            let spec = builtin(name).expect("known builtin");
            assert_eq!(
                spec.point_count(),
                spec.points().len() as u64,
                "{name}: point_count disagrees with points()"
            );
        }
        // A hostile grid with two huge axes: the count is exact and
        // instant — calling points() here would allocate 64M PointSpecs.
        let mut spec = builtin("chaos_ensemble").expect("builtin");
        if let CampaignGrid::Chaos { drop_pm, seeds, .. } = &mut spec.grid {
            *drop_pm = vec![0; 8000];
            *seeds = (0..8000).collect();
        }
        assert_eq!(spec.point_count(), 64_000_000);
    }

    #[test]
    fn spec_point_order_is_deterministic() {
        let spec = builtin("simthm_grid").expect("builtin");
        assert_eq!(spec.points(), spec.points());
        // First axis (gamma) is outermost: the first four points share Γ.
        let points = spec.points();
        match (&points[0], &points[3]) {
            (PointSpec::SimThm(a), PointSpec::SimThm(b)) => {
                assert_eq!(a.gamma, b.gamma);
                assert_ne!(a.l, b.l);
            }
            other => panic!("unexpected points {other:?}"),
        }
    }

    #[test]
    fn spec_rejects_empty_name() {
        let mut spec = simthm_spec();
        spec.name.clear();
        assert_eq!(spec.validate(), Err(CampaignError::EmptyName));
    }

    #[test]
    fn spec_rejects_empty_axes() {
        let mut spec = simthm_spec();
        if let CampaignGrid::SimThm { gammas, .. } = &mut spec.grid {
            gammas.clear();
        }
        assert_eq!(spec.validate(), Err(CampaignError::EmptyGrid("gammas")));

        let mut spec = simthm_spec();
        if let CampaignGrid::SimThm { lengths, .. } = &mut spec.grid {
            lengths.clear();
        }
        assert_eq!(spec.validate(), Err(CampaignError::EmptyGrid("lengths")));
    }

    #[test]
    fn spec_rejects_degenerate_simthm_parameters() {
        let mut spec = simthm_spec();
        if let CampaignGrid::SimThm { gammas, .. } = &mut spec.grid {
            gammas.push(0);
        }
        assert_eq!(spec.validate(), Err(CampaignError::ZeroGamma));

        let mut spec = simthm_spec();
        if let CampaignGrid::SimThm { lengths, .. } = &mut spec.grid {
            lengths.push(2);
        }
        assert_eq!(spec.validate(), Err(CampaignError::BadLength(2)));

        let mut spec = simthm_spec();
        if let CampaignGrid::SimThm { bandwidth, .. } = &mut spec.grid {
            *bandwidth = 0;
        }
        assert_eq!(spec.validate(), Err(CampaignError::BadBandwidth(0)));
    }

    #[test]
    fn spec_rejects_degenerate_chaos_parameters() {
        let base = builtin("chaos_ensemble").expect("builtin");

        let mut spec = base.clone();
        if let CampaignGrid::Chaos { drop_pm, .. } = &mut spec.grid {
            drop_pm.push(1001);
        }
        assert_eq!(spec.validate(), Err(CampaignError::BadDropProb(1001)));

        let mut spec = base.clone();
        if let CampaignGrid::Chaos { nodes, .. } = &mut spec.grid {
            *nodes = 1;
        }
        assert_eq!(spec.validate(), Err(CampaignError::TooFewNodes(1)));

        let mut spec = base.clone();
        if let CampaignGrid::Chaos { bandwidth, .. } = &mut spec.grid {
            *bandwidth = 1;
        }
        assert_eq!(spec.validate(), Err(CampaignError::BadBandwidth(1)));

        let mut spec = base;
        if let CampaignGrid::Chaos { seeds, .. } = &mut spec.grid {
            seeds.clear();
        }
        assert_eq!(spec.validate(), Err(CampaignError::EmptyGrid("seeds")));
    }

    #[test]
    fn spec_rejects_degenerate_gadget_parameters() {
        let base = builtin("gadget_sweep").expect("builtin");

        let mut spec = base.clone();
        if let CampaignGrid::Gadgets { bit_sizes, .. } = &mut spec.grid {
            bit_sizes.push(0);
        }
        assert_eq!(spec.validate(), Err(CampaignError::ZeroBits));

        let mut spec = base;
        if let CampaignGrid::Gadgets { seeds, .. } = &mut spec.grid {
            seeds.clear();
        }
        assert_eq!(spec.validate(), Err(CampaignError::EmptyGrid("seeds")));
    }

    #[test]
    fn spec_rejects_degenerate_ex11_parameters() {
        let base = builtin("ex11_separation").expect("builtin");

        let mut spec = base.clone();
        if let CampaignGrid::Ex11 { bits, .. } = &mut spec.grid {
            bits.push(0);
        }
        assert_eq!(spec.validate(), Err(CampaignError::ZeroBits));

        let mut spec = base.clone();
        if let CampaignGrid::Ex11 { distances, .. } = &mut spec.grid {
            distances.push(0);
        }
        assert_eq!(spec.validate(), Err(CampaignError::ZeroDistance));

        // b = 4096 needs a 12-bit query register; an 11-bit channel
        // cannot carry a single Grover round trip.
        let mut spec = base.clone();
        if let CampaignGrid::Ex11 { bandwidths, .. } = &mut spec.grid {
            bandwidths.push(11);
        }
        assert_eq!(spec.validate(), Err(CampaignError::BadBandwidth(11)));

        let mut spec = base;
        if let CampaignGrid::Ex11 { bandwidths, .. } = &mut spec.grid {
            bandwidths.clear();
        }
        assert_eq!(spec.validate(), Err(CampaignError::EmptyGrid("bandwidths")));
    }

    #[test]
    fn spec_ex11_channel_axis_is_outermost() {
        let spec = builtin("ex11_separation").expect("builtin");
        let points = spec.points();
        assert_eq!(points.len(), 32);
        let half = points.len() / 2;
        for (i, p) in points.iter().enumerate() {
            match p {
                PointSpec::Ex11 { quantum, .. } => assert_eq!(*quantum, i >= half),
                other => panic!("unexpected point {other:?}"),
            }
        }
        // Record i and i + 16 are the matched classical/quantum pair.
        match (&points[0], &points[half]) {
            (
                PointSpec::Ex11 {
                    bits: a,
                    bandwidth: ab,
                    distance: ad,
                    ..
                },
                PointSpec::Ex11 {
                    bits: b,
                    bandwidth: bb,
                    distance: bd,
                    ..
                },
            ) => {
                assert_eq!((a, ab, ad), (b, bb, bd));
            }
            other => panic!("unexpected points {other:?}"),
        }
    }

    #[test]
    fn spec_rejects_output_collision() {
        assert_eq!(
            validate_output_paths("out.jsonl", "out.jsonl"),
            Err(CampaignError::OutputCollision("out.jsonl".to_string()))
        );
        validate_output_paths("out.jsonl", "BENCH_x.json").expect("distinct paths are fine");
    }

    #[test]
    fn spec_errors_display_without_panicking() {
        let errors = [
            CampaignError::EmptyName,
            CampaignError::ZeroThreads,
            CampaignError::ZeroAttempts,
            CampaignError::EmptyGrid("gammas"),
            CampaignError::ZeroGamma,
            CampaignError::BadLength(2),
            CampaignError::BadBandwidth(0),
            CampaignError::BadDropProb(2000),
            CampaignError::TooFewNodes(1),
            CampaignError::ZeroBits,
            CampaignError::ZeroDistance,
            CampaignError::OutputCollision("x".into()),
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }
}
