//! Crash-safe campaign journaling: append-only record durability and
//! the startup recovery pass behind `campaign resume`.
//!
//! # Journal format
//!
//! The journal *is* the campaign's JSONL output file — there is no
//! sidecar. Line `i` of the file is the outcome of grid point `i`:
//! either a `qdc-campaign-point/v1` record or a
//! `qdc-campaign-failure/v1` record. Because the runner commits lines
//! strictly in index order, "resume at the first missing index" is
//! well-defined: a journal with `k` complete, valid lines means points
//! `0..k` are done and point `k` is next.
//!
//! # Durability discipline
//!
//! [`Journal::append_line`] writes each record as **one** `write_all`
//! call (line plus trailing newline in a single buffer — the writer
//! never leaves a partial line in an OS buffer across a flush) followed
//! by `sync_data`. A crash can therefore lose at most the line being
//! written; it can never interleave two lines or persist a record
//! without its newline fence except as a recognizable torn tail.
//!
//! # Recovery pass
//!
//! [`recover`] scans an existing journal prefix-wise: every complete,
//! schema-valid line whose `point` index matches its position is kept;
//! the first torn, unparsable, out-of-order or unknown-schema line —
//! and everything after it — is truncated (re-run on resume). Torn
//! bytes never swallow a preceding valid record because truncation
//! always lands on the newline fence of the last valid line. A line
//! that is valid but names a *different campaign* is not truncatable
//! damage — the caller pointed the runner at the wrong file — and
//! surfaces as a hard error instead.

use crate::json::Json;
use crate::point::{validate_failure_line, validate_record_line};
use crate::spec::{FAILURE_SCHEMA, POINT_SCHEMA};
use qdc_congest::RunMetrics;
use std::io::Write;

/// Append-only journal writer with the one-line-per-write + fsync
/// discipline described in the module docs.
#[derive(Debug)]
pub struct Journal {
    file: std::fs::File,
}

impl Journal {
    /// Creates (or truncates) a fresh journal at `path`.
    pub fn create(path: &str) -> std::io::Result<Journal> {
        Ok(Journal {
            file: std::fs::File::create(path)?,
        })
    }

    /// Opens an existing journal for appending (creating it if absent —
    /// resuming a campaign that never started is just starting it).
    pub fn append(path: &str) -> std::io::Result<Journal> {
        Ok(Journal {
            file: std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)?,
        })
    }

    /// Durably appends one record line. The line must not itself
    /// contain a newline; the record boundary `\n` is added here so the
    /// whole line reaches the file in a single `write_all`.
    pub fn append_line(&mut self, line: &str) -> std::io::Result<()> {
        debug_assert!(!line.contains('\n'), "journal lines are newline-free");
        let mut buf = Vec::with_capacity(line.len() + 1);
        buf.extend_from_slice(line.as_bytes());
        buf.push(b'\n');
        self.file.write_all(&buf)?;
        self.file.sync_data()
    }

    /// Flushes file metadata too (used once at shutdown; per-line
    /// durability only needs `sync_data`).
    pub fn sync_all(&mut self) -> std::io::Result<()> {
        self.file.sync_all()
    }
}

/// One recovered journal line, reduced to exactly what the aggregate
/// fold needs (the verbatim line bytes stay in the file untouched).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RecoveredEntry {
    /// A completed point record.
    Point {
        /// The record's traffic metrics.
        metrics: RunMetrics,
        /// The record's verdict field.
        accept: Option<bool>,
        /// Whether the record carried a (legacy) error string.
        errored: bool,
    },
    /// A journaled point failure.
    Failure {
        /// How many attempts the supervisor made before giving up.
        attempts: u64,
    },
}

/// What the recovery pass found in an existing journal.
#[derive(Clone, Debug)]
pub struct Recovery {
    /// One entry per surviving line, in index order — entry `i` is
    /// point `i`, so `entries.len()` is the first index left to run.
    pub entries: Vec<RecoveredEntry>,
    /// Byte length of the surviving prefix (always on a `\n` fence).
    pub kept_bytes: usize,
    /// Bytes past the surviving prefix (torn tail; `0` for a clean
    /// journal). The caller truncates the file to `kept_bytes` before
    /// appending.
    pub truncated_bytes: usize,
}

/// Scans journal `text` for campaign `campaign` and returns the
/// surviving prefix, per the recovery policy in the module docs.
///
/// # Errors
///
/// Returns a message when a (valid) line belongs to a different
/// campaign — truncating someone else's results would destroy data, so
/// that is a hard mismatch, not recoverable damage.
pub fn recover(text: &str, campaign: &str) -> Result<Recovery, String> {
    let mut entries = Vec::new();
    let mut kept = 0usize;
    let mut pos = 0usize;
    while pos < text.len() {
        let Some(nl) = text[pos..].find('\n') else {
            break; // torn final line: no newline fence, truncate it
        };
        let line = &text[pos..pos + nl];
        match classify_line(line, campaign, entries.len())? {
            Some(entry) => {
                entries.push(entry);
                pos += nl + 1;
                kept = pos;
            }
            None => break, // invalid line: truncate from here on
        }
    }
    Ok(Recovery {
        entries,
        kept_bytes: kept,
        truncated_bytes: text.len() - kept,
    })
}

/// Validates one line in position `index`. `Ok(Some(_))` keeps it,
/// `Ok(None)` truncates from here, `Err` is a campaign mismatch.
fn classify_line(
    line: &str,
    campaign: &str,
    index: usize,
) -> Result<Option<RecoveredEntry>, String> {
    let Ok(doc) = crate::json::parse(line) else {
        return Ok(None);
    };
    let schema = match doc.get("schema") {
        Some(Json::Str(s)) => s.as_str(),
        _ => return Ok(None),
    };
    let valid = match schema {
        s if s == POINT_SCHEMA => validate_record_line(line).is_ok(),
        s if s == FAILURE_SCHEMA => validate_failure_line(line).is_ok(),
        _ => false,
    };
    if !valid {
        return Ok(None);
    }
    // The line is schema-valid: now it must belong to *this* campaign…
    match doc.get("campaign") {
        Some(Json::Str(c)) if c == campaign => {}
        Some(Json::Str(c)) => {
            return Err(format!(
                "journal line {index} belongs to campaign `{c}`, not `{campaign}` \
                 — refusing to truncate another campaign's results"
            ));
        }
        _ => return Ok(None),
    }
    // …and sit at its own index (the index-ordered commit contract).
    if doc.get("point").and_then(Json::as_u64) != Some(index as u64) {
        return Ok(None);
    }
    if schema == FAILURE_SCHEMA {
        let attempts = doc
            .get("attempts")
            .and_then(Json::as_u64)
            .expect("validated above");
        return Ok(Some(RecoveredEntry::Failure { attempts }));
    }
    let m = doc.get("metrics").expect("validated above");
    let get = |k: &str| m.get(k).and_then(Json::as_u64).expect("validated above");
    Ok(Some(RecoveredEntry::Point {
        metrics: RunMetrics {
            rounds: get("rounds"),
            completed: get("completed"),
            messages_sent: get("messages_sent"),
            bits_sent: get("bits_sent"),
            max_bits_per_round: get("max_bits_per_round"),
            messages_dropped: get("messages_dropped"),
            nodes_crashed: get("nodes_crashed"),
            bits_corrupted: get("bits_corrupted"),
        },
        accept: match doc.get("accept") {
            Some(Json::Bool(b)) => Some(*b),
            _ => None,
        },
        errored: matches!(doc.get("error"), Some(Json::Str(_))),
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::{execute_point, failure_json, record_json, PointFailure};
    use crate::spec::PointSpec;

    fn sample_lines(campaign: &str) -> Vec<String> {
        let spec = PointSpec::Chaos {
            nodes: 8,
            extra_edges: 2,
            drop_pm: 100,
            seed: 1,
            bandwidth: 4,
        };
        let (rec0, _) = execute_point(0, &spec).expect("runs");
        let (rec2, _) = execute_point(2, &spec).expect("runs");
        let fail1 = PointFailure {
            index: 1,
            kind: "watchdog_tripped",
            retryable: true,
            attempts: 3,
            error: "watchdog tripped: no quiescence after 40 rounds".into(),
        };
        vec![
            record_json(campaign, &rec0, false),
            failure_json(campaign, &fail1),
            record_json(campaign, &rec2, false),
        ]
    }

    #[test]
    fn journal_recover_accepts_a_clean_file() {
        let lines = sample_lines("t");
        let text = lines.join("\n") + "\n";
        let rec = recover(&text, "t").expect("clean journal");
        assert_eq!(rec.entries.len(), 3);
        assert_eq!(rec.kept_bytes, text.len());
        assert_eq!(rec.truncated_bytes, 0);
        assert!(matches!(rec.entries[0], RecoveredEntry::Point { .. }));
        assert_eq!(rec.entries[1], RecoveredEntry::Failure { attempts: 3 });
    }

    #[test]
    fn journal_recover_truncates_a_torn_tail() {
        let lines = sample_lines("t");
        let clean = lines[..2].join("\n") + "\n";
        // Torn fragments (no newline fence) and complete-but-invalid
        // lines are both truncated from the first bad byte onward.
        for tail in [
            "",
            "{\"schema\":\"qdc-camp",
            "garbage",
            "{}\n",
            "null\nmore",
        ] {
            let torn = format!("{clean}{tail}");
            let rec = recover(&torn, "t").expect("recoverable");
            assert_eq!(rec.entries.len(), 2, "tail {tail:?}");
            assert_eq!(rec.kept_bytes, clean.len());
            assert_eq!(rec.truncated_bytes, tail.len());
        }
    }

    #[test]
    fn journal_recover_truncates_an_out_of_order_index() {
        let lines = sample_lines("t");
        // Drop line 1: line at position 1 then carries point index 2.
        let text = format!("{}\n{}\n", lines[0], lines[2]);
        let rec = recover(&text, "t").expect("recoverable");
        assert_eq!(rec.entries.len(), 1);
        assert_eq!(rec.kept_bytes, lines[0].len() + 1);
    }

    #[test]
    fn journal_recover_rejects_a_foreign_campaign() {
        let text = sample_lines("other").join("\n") + "\n";
        let err = recover(&text, "t").expect_err("foreign journal");
        assert!(err.contains("`other`"), "message names the culprit: {err}");
    }

    #[test]
    fn journal_recover_of_empty_text_resumes_from_zero() {
        let rec = recover("", "t").expect("empty journal");
        assert!(rec.entries.is_empty());
        assert_eq!(rec.kept_bytes, 0);
        assert_eq!(rec.truncated_bytes, 0);
    }

    #[test]
    fn journal_recovered_metrics_match_the_original_record() {
        let spec = PointSpec::Chaos {
            nodes: 10,
            extra_edges: 3,
            drop_pm: 200,
            seed: 7,
            bandwidth: 8,
        };
        let (orig, _) = execute_point(0, &spec).expect("runs");
        let text = record_json("t", &orig, false) + "\n";
        let rec = recover(&text, "t").expect("clean journal");
        let RecoveredEntry::Point {
            metrics,
            accept,
            errored,
        } = &rec.entries[0]
        else {
            panic!("point line recovers as a point entry");
        };
        assert_eq!(*metrics, orig.metrics);
        assert_eq!(*accept, orig.accept);
        assert!(!errored);
    }

    #[test]
    fn journal_truncation_never_removes_a_valid_record() {
        // Satellite property: cutting the journal at *every* byte
        // position (a model of SIGKILL mid-write) recovers exactly the
        // complete lines that fully precede the cut — never fewer.
        let lines = sample_lines("t");
        let text = lines.join("\n") + "\n";
        let mut fence = Vec::new(); // fence[i] = bytes up to end of line i
        let mut acc = 0;
        for l in &lines {
            acc += l.len() + 1;
            fence.push(acc);
        }
        for cut in 0..=text.len() {
            let prefix = &text[..cut];
            let rec = recover(prefix, "t").expect("prefix recovers");
            let complete = fence.iter().filter(|&&f| f <= cut).count();
            assert_eq!(
                rec.entries.len(),
                complete,
                "cut at byte {cut}: every fully-written line survives"
            );
            assert_eq!(
                rec.kept_bytes,
                if complete == 0 {
                    0
                } else {
                    fence[complete - 1]
                }
            );
        }
    }
}
