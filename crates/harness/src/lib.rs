//! Experiment-campaign harness: declarative grids, deterministic
//! parallel execution, machine-readable results.
//!
//! The paper's empirical claims (the Theorem 3.5 traffic budget, the
//! robustness of the flood under loss, the gadget reductions' cycle
//! predictions) are statements about *families* of instances, not
//! single runs. This crate runs whole families:
//!
//! * [`CampaignSpec`] declares a named grid of experiment points —
//!   a Γ×L simulation-theorem sweep, a chaos seed ensemble, or a
//!   gadget instance sweep ([`spec`]);
//! * [`run_campaign`] validates the spec up front (structured
//!   [`CampaignError`]s for every degenerate input), expands the grid,
//!   shards the points round-robin across a [`std::thread::scope`]
//!   worker pool, and folds the per-point records into an
//!   order-independent [`Aggregate`] ([`runner`]);
//! * records and summaries serialize through a tiny hand-rolled JSON
//!   layer ([`json`]) with fixed field order and integer-only metrics,
//!   which is what makes the headline guarantee checkable: **the same
//!   spec produces byte-identical deterministic output on 1 or N
//!   threads**.
//!
//! The `campaign` binary in `qdc-bench` is the CLI front end; the
//! root-level `tests/harness_properties.rs` property-tests the
//! determinism contract with random small specs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod point;
pub mod runner;
pub mod spec;

pub use json::Json;
pub use point::{
    execute_point, execute_point_with_telemetry, record_json, validate_record_line, PointRecord,
};
pub use runner::{
    run_campaign, summary_json, validate_summary, Aggregate, CampaignOutcome, RunOptions,
};
pub use spec::{
    builtin, builtin_names, validate_output_paths, CampaignError, CampaignGrid, CampaignSpec,
    PointSpec, CAMPAIGN_SCHEMA, POINT_SCHEMA,
};
