//! Experiment-campaign harness: declarative grids, deterministic
//! parallel execution, machine-readable results.
//!
//! The paper's empirical claims (the Theorem 3.5 traffic budget, the
//! robustness of the flood under loss, the gadget reductions' cycle
//! predictions) are statements about *families* of instances, not
//! single runs. This crate runs whole families:
//!
//! * [`CampaignSpec`] declares a named grid of experiment points —
//!   a Γ×L simulation-theorem sweep, a chaos seed ensemble, or a
//!   gadget instance sweep ([`spec`]);
//! * [`run_campaign`] validates the spec up front (structured
//!   [`CampaignError`]s for every degenerate input), expands the grid,
//!   shards the points round-robin across a [`std::thread::scope`]
//!   worker pool, and folds the per-point records into an
//!   order-independent [`Aggregate`] ([`runner`]);
//! * records and summaries serialize through a tiny hand-rolled JSON
//!   layer ([`json`]) with fixed field order and integer-only metrics,
//!   which is what makes the headline guarantee checkable: **the same
//!   spec produces byte-identical deterministic output on 1 or N
//!   threads**.
//!
//! Campaigns are **crash-safe**: [`run_campaign_journaled`] streams
//! every committed point through a durable fsync-per-line journal
//! ([`journal`]), recovers interrupted journals (torn tails truncated
//! on a record boundary), and resumes at the first missing index;
//! point panics, structured simulator errors, and wall-clock deadline
//! overruns are isolated into `qdc-campaign-failure/v1` records
//! ([`PointFailure`]) with supervised, deterministically-backed-off
//! retries instead of aborting the grid.
//!
//! The `campaign` binary in `qdc-bench` is the CLI front end; the
//! root-level `tests/harness_properties.rs` property-tests the
//! determinism contract with random small specs, and
//! `tests/crash_resume_properties.rs` kill-and-resumes journals at
//! every prefix.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod journal;
pub mod json;
pub mod point;
pub mod runner;
pub mod spec;
pub mod spec_io;

pub use journal::{recover, Journal, RecoveredEntry, Recovery};
pub use json::Json;
pub use point::{
    execute_point, execute_point_with_telemetry, failure_json, record_json, stream_telemetry_path,
    validate_failure_line, validate_record_line, PointFailure, PointRecord, StreamTelemetry,
    TelemetryMode,
};
pub use runner::{
    journal_summary_json, run_campaign, run_campaign_journaled, summary_json, validate_summary,
    Aggregate, CampaignOutcome, CampaignRunError, CancelToken, JournalConfig, JournalOutcome,
    RunOptions,
};
pub use spec::{
    builtin, builtin_names, validate_output_paths, CampaignError, CampaignGrid, CampaignSpec,
    PointSpec, CAMPAIGN_SCHEMA, FAILURE_SCHEMA, POINT_SCHEMA,
};
pub use spec_io::{parse_spec, spec_from_json, spec_to_json};
