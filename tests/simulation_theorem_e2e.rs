//! Cross-crate integration tests: Theorem 3.5 end to end — embedding,
//! ownership, audit and the §9.2 decision.

use proptest::prelude::*;
use qdc::congest::{CongestConfig, Inbox, Message, NodeAlgorithm, NodeInfo, Outbox, Simulator};
use qdc::core::theorems;
use qdc::graph::{generate, predicates, GraphBuilder, NodeId};
use qdc::simthm::{audit_trace, Party, SimulationNetwork};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Observation 8.1: the embedding preserves cycle structure for
    /// arbitrary (simple) matching pairs.
    #[test]
    fn embedding_preserves_cycles(seed in 0u64..2000) {
        let net = SimulationNetwork::build(14, 17); // 14 + 4 = 18 tracks
        let tracks = net.track_count();
        let carol = generate::random_perfect_matching(tracks, seed);
        let david = generate::random_perfect_matching(tracks, seed + 5000);
        // Skip pairs sharing an edge (G would be a multigraph).
        let mut b = GraphBuilder::new(tracks);
        let mut simple = true;
        for &(u, v) in carol.iter().chain(&david) {
            let before = b.edge_count();
            b.add_edge_if_absent(NodeId::from(u), NodeId::from(v));
            simple &= b.edge_count() > before;
        }
        prop_assume!(simple);
        let g = b.build();
        let m = net.embed_matchings(&carol, &david);
        prop_assert_eq!(
            predicates::cycle_count_two_regular(net.graph(), &m).unwrap(),
            predicates::cycle_count_two_regular(&g, &g.full_subgraph()).unwrap()
        );
        // And Hamiltonicity transfers both ways.
        prop_assert_eq!(
            predicates::is_hamiltonian_cycle(net.graph(), &m),
            predicates::is_hamiltonian_cycle(&g, &g.full_subgraph())
        );
    }

    /// Ownership sets partition the nodes at every time within the
    /// horizon, monotonically growing toward the middle.
    #[test]
    fn ownership_is_a_monotone_partition(l_exp in 3u32..7) {
        let net = SimulationNetwork::build(4, (1usize << l_exp) + 1);
        for t in 0..net.horizon() {
            for v in net.graph().nodes() {
                let now = net.owner(v, t);
                let next = net.owner(v, t + 1);
                // Carol/David regions only grow; the server only shrinks.
                if now == Party::Carol {
                    prop_assert_eq!(next, Party::Carol);
                }
                if now == Party::David {
                    prop_assert_eq!(next, Party::David);
                }
            }
        }
    }
}

/// A broadcast-happy algorithm for audit stress.
struct Saturate {
    rounds_left: usize,
}

impl NodeAlgorithm for Saturate {
    fn on_start(&mut self, _info: &NodeInfo, out: &mut Outbox) {
        out.broadcast(Message::from_uint(1, 8));
    }
    fn on_round(&mut self, _info: &NodeInfo, _inbox: &Inbox, out: &mut Outbox) {
        if self.rounds_left > 0 {
            self.rounds_left -= 1;
            out.broadcast(Message::from_uint(1, 8));
        }
    }
    fn is_terminated(&self) -> bool {
        self.rounds_left == 0
    }
}

#[test]
fn audit_budget_holds_across_network_sizes() {
    for &(gamma, l) in &[(4usize, 17usize), (8, 33), (16, 65)] {
        let net = SimulationNetwork::build(gamma, l);
        let bandwidth = 8;
        let sim = Simulator::new(net.graph(), CongestConfig::quantum(bandwidth));
        let horizon = net.horizon();
        let (_, _, trace) = sim.run_traced(
            |_| Saturate {
                rounds_left: horizon.saturating_sub(1),
            },
            horizon,
        );
        let audit = audit_trace(&net, &trace, bandwidth);
        assert!(audit.within_horizon);
        assert!(
            audit.within_budget,
            "Γ={gamma}, L={l}: max {} vs budget {}",
            audit.max_paid_per_round, audit.per_round_budget
        );
        // The budget must be Θ(B log L), not Θ(ΓB): paid traffic cannot
        // scale with the number of paths.
        assert!(audit.per_round_budget <= 6 * 8 * (l.ilog2() as u64 + 1));
    }
}

#[test]
fn thm38_decision_procedure_is_sound_on_random_instances() {
    // Full §9.2 loop: random matchings → embed → weight gadget →
    // (sequential) MST → threshold decision == spanning-connectivity.
    for seed in 0..10u64 {
        let net = SimulationNetwork::build(14, 17);
        let tracks = net.track_count();
        let carol = generate::random_perfect_matching(tracks, seed);
        let david = generate::random_perfect_matching(tracks, seed + 100);
        let m = net.embed_matchings(&carol, &david);
        let n = net.graph().node_count();
        let alpha = 2.0;
        let w = (alpha as u64) * (n as u64) * 2;
        let weights = theorems::weight_gadget(net.graph(), &m, w);
        let mst = qdc::graph::algorithms::kruskal_mst(net.graph(), &weights);
        let accept = theorems::decide_connected_from_mst(mst.total_weight, n, alpha);
        assert_eq!(
            accept,
            predicates::is_spanning_connected_subgraph(net.graph(), &m),
            "seed {seed}"
        );
    }
}

#[test]
fn horizon_and_diameter_relationship() {
    // The theorem needs diameter ≪ horizon ≪ L: check across sizes.
    for &l in &[17usize, 33, 65, 129] {
        let net = SimulationNetwork::build(6, l);
        let d = qdc::graph::algorithms::diameter(net.graph()).unwrap() as usize;
        assert!(d <= net.diameter_upper_bound());
        assert!(net.horizon() >= l / 2 - 2);
        if l >= 65 {
            assert!(
                d < net.horizon(),
                "L={l}: diameter {d} should sit below the horizon {}",
                net.horizon()
            );
        }
    }
}
