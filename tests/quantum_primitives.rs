//! Cross-crate integration tests: quantum primitives, property-tested.

use proptest::prelude::*;
use qdc::quantum::games::{chsh_optimal_strategy, EntangledXorStrategy, XorGame};
use qdc::quantum::grover::{optimal_iterations, success_probability, Grover};
use qdc::quantum::protocols::{epr_pair, superdense_decode, superdense_send, teleport};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Teleportation is exact for every input state and every random
    /// measurement outcome.
    #[test]
    fn teleportation_is_exact(theta in 0.0f64..std::f64::consts::PI,
                              phi in 0.0f64..(2.0 * std::f64::consts::PI),
                              seed in any::<u64>()) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let out = teleport(theta, phi, &mut rng);
        prop_assert!((out.fidelity - 1.0).abs() < 1e-9);
    }

    /// Superdense coding decodes every 2-bit message with certainty.
    #[test]
    fn superdense_is_exact(b0 in any::<bool>(), b1 in any::<bool>(), seed in any::<u64>()) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let decoded = superdense_decode(superdense_send((b0, b1)), &mut rng);
        prop_assert_eq!(decoded, (b0, b1));
    }

    /// Grover's closed-form success probability matches the exact
    /// simulation for arbitrary marked sets and iteration counts.
    #[test]
    fn grover_formula_matches_simulation(
        qubits in 3usize..8,
        marks in prop::collection::btree_set(0usize..32, 1..5),
        k in 0usize..10,
    ) {
        let n = 1usize << qubits;
        let marked: Vec<usize> = marks.iter().copied().filter(|&m| m < n).collect();
        prop_assume!(!marked.is_empty());
        let g = Grover::new(qubits, &marked);
        let sim = g.marked_probability(k);
        let formula = success_probability(n, marked.len(), k);
        prop_assert!((sim - formula).abs() < 1e-8, "sim {sim} vs formula {formula}");
    }

    /// The optimal iteration count really is near-optimal: one fewer or
    /// one more iteration never improves success by a meaningful margin.
    #[test]
    fn optimal_iterations_is_a_local_max(qubits in 4usize..10) {
        let n = 1usize << qubits;
        let k = optimal_iterations(n, 1);
        let at = success_probability(n, 1, k);
        prop_assert!(at > 0.8);
        // Any k' ≤ k has success ≤ monotone growth up to the peak.
        prop_assert!(success_probability(n, 1, k / 2) <= at + 1e-9);
    }

    /// No entangled strategy at *aligned* angles (θ_A = θ_B per input)
    /// beats Tsirelson for CHSH; the optimal strategy does hit it.
    #[test]
    fn chsh_strategies_respect_tsirelson(a0 in 0.0f64..3.2, a1 in 0.0f64..3.2,
                                         b0 in 0.0f64..3.2, b1 in 0.0f64..3.2) {
        let game = XorGame::chsh();
        let strategy = EntangledXorStrategy {
            state: epr_pair(),
            alice_angles: vec![a0, a1],
            bob_angles: vec![b0, b1],
        };
        let bias = game.entangled_bias(&strategy);
        prop_assert!(bias <= std::f64::consts::FRAC_1_SQRT_2 + 1e-9,
            "bias {bias} beats Tsirelson");
    }
}

#[test]
fn tsirelson_is_attained() {
    let game = XorGame::chsh();
    let bias = game.entangled_bias(&chsh_optimal_strategy());
    assert!((bias - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-12);
    assert!(
        bias > game.classical_bias() + 0.2,
        "quantum advantage is real"
    );
}

#[test]
fn entanglement_is_not_communication() {
    // Holevo-flavored sanity check: measuring EPR halves yields perfectly
    // correlated but *uniform* bits — no input-dependent information
    // flows, which is why the paper's Ω(D) "limited sight" argument
    // survives entanglement.
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let mut ones = 0usize;
    for _ in 0..2000 {
        let (a, b) = qdc::quantum::protocols::shared_random_bit(&mut rng);
        assert_eq!(a, b);
        ones += usize::from(a);
    }
    let rate = ones as f64 / 2000.0;
    assert!(
        (rate - 0.5).abs() < 0.05,
        "shared bit must be unbiased, got {rate}"
    );
}
