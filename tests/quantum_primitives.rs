//! Cross-crate integration tests: quantum primitives, property-tested.

use proptest::prelude::*;
use qdc::quantum::games::{
    abort_play, chsh_optimal_strategy, run_protocol, EntangledXorStrategy, InnerProductStreaming,
    NormalFormProtocol, XorGame,
};
use qdc::quantum::grover::{optimal_iterations, success_probability, Grover};
use qdc::quantum::protocols::{epr_pair, superdense_decode, superdense_send, teleport};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// The XOR game induced by 2-bit inner product: uniform inputs over
/// `{0,1}² × {0,1}²`, target `⟨x, y⟩ mod 2` — the Lemma 3.2 bridge target
/// for `InnerProductStreaming::new(2)`.
fn ip2_xor_game() -> XorGame {
    let bits = |i: usize| [(i & 1) == 1, (i & 2) == 2];
    let mut f = Vec::with_capacity(16);
    for x in 0..4 {
        for y in 0..4 {
            let (xb, yb) = (bits(x), bits(y));
            f.push((xb[0] & yb[0]) ^ (xb[1] & yb[1]));
        }
    }
    XorGame::new(4, 4, vec![1.0 / 16.0; 16], f)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Teleportation is exact for every input state and every random
    /// measurement outcome.
    #[test]
    fn teleportation_is_exact(theta in 0.0f64..std::f64::consts::PI,
                              phi in 0.0f64..(2.0 * std::f64::consts::PI),
                              seed in any::<u64>()) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let out = teleport(theta, phi, &mut rng);
        prop_assert!((out.fidelity - 1.0).abs() < 1e-9);
    }

    /// Superdense coding decodes every 2-bit message with certainty.
    #[test]
    fn superdense_is_exact(b0 in any::<bool>(), b1 in any::<bool>(), seed in any::<u64>()) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let decoded = superdense_decode(superdense_send((b0, b1)), &mut rng);
        prop_assert_eq!(decoded, (b0, b1));
    }

    /// Grover's closed-form success probability matches the exact
    /// simulation for arbitrary marked sets and iteration counts.
    #[test]
    fn grover_formula_matches_simulation(
        qubits in 3usize..8,
        marks in prop::collection::btree_set(0usize..32, 1..5),
        k in 0usize..10,
    ) {
        let n = 1usize << qubits;
        let marked: Vec<usize> = marks.iter().copied().filter(|&m| m < n).collect();
        prop_assume!(!marked.is_empty());
        let g = Grover::new(qubits, &marked);
        let sim = g.marked_probability(k);
        let formula = success_probability(n, marked.len(), k);
        prop_assert!((sim - formula).abs() < 1e-8, "sim {sim} vs formula {formula}");
    }

    /// The optimal iteration count really is near-optimal: one fewer or
    /// one more iteration never improves success by a meaningful margin.
    #[test]
    fn optimal_iterations_is_a_local_max(qubits in 4usize..10) {
        let n = 1usize << qubits;
        let k = optimal_iterations(n, 1);
        let at = success_probability(n, 1, k);
        prop_assert!(at > 0.8);
        // Any k' ≤ k has success ≤ monotone growth up to the peak.
        prop_assert!(success_probability(n, 1, k / 2) <= at + 1e-9);
    }

    /// Lemma 3.2 on random small instances: an AND-game win implies
    /// survival, and survivors reproduce the honest protocol output —
    /// for every input pair and round count, not just the fixed ones.
    #[test]
    fn abort_and_wins_imply_survival(
        xb in any::<u8>(),
        yb in any::<u8>(),
        rounds in 1usize..3,
        seed in any::<u64>(),
    ) {
        let n = 2 * rounds;
        let x: Vec<bool> = (0..n).map(|i| (xb >> i) & 1 == 1).collect();
        let y: Vec<bool> = (0..n).map(|i| (yb >> i) & 1 == 1).collect();
        let p = InnerProductStreaming::new(n);
        let honest = run_protocol(&p, &x, &y);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for _ in 0..300 {
            let play = abort_play(&p, &x, &y, &mut rng);
            prop_assert!(!play.and_output || play.survived);
            if play.survived {
                prop_assert_eq!(play.and_output, honest);
                prop_assert_eq!(play.xor_output, honest);
            }
        }
    }

    /// No entangled strategy at *aligned* angles (θ_A = θ_B per input)
    /// beats Tsirelson for CHSH; the optimal strategy does hit it.
    #[test]
    fn chsh_strategies_respect_tsirelson(a0 in 0.0f64..3.2, a1 in 0.0f64..3.2,
                                         b0 in 0.0f64..3.2, b1 in 0.0f64..3.2) {
        let game = XorGame::chsh();
        let strategy = EntangledXorStrategy {
            state: epr_pair(),
            alice_angles: vec![a0, a1],
            bob_angles: vec![b0, b1],
        };
        let bias = game.entangled_bias(&strategy);
        prop_assert!(bias <= std::f64::consts::FRAC_1_SQRT_2 + 1e-9,
            "bias {bias} beats Tsirelson");
    }
}

#[test]
fn lemma_3_2_xor_game_value_bound_on_ip2() {
    // A 1-round protocol for ⟨x,y⟩ mod 2 on 2-bit inputs, pushed through
    // the Lemma 3.2 abort map, plays the induced XOR game with bias
    // exactly 4^{-2c} = 1/16: survivors (probability 1/16) answer
    // perfectly, aborts contribute zero bias. Measured on the physical
    // sampled game, and sandwiched by the enumerated game value.
    let game = ip2_xor_game();
    let p = InnerProductStreaming::new(2);
    let bits = |i: usize| [(i & 1) == 1, (i & 2) == 2];
    let mut rng = ChaCha8Rng::seed_from_u64(41);
    let trials = 120_000;
    let mut signed = 0i64;
    for _ in 0..trials {
        let (xi, yi) = (rng.gen_range(0..4usize), rng.gen_range(0..4usize));
        let play = abort_play(&p, &bits(xi), &bits(yi), &mut rng);
        signed += if play.xor_output == game.target(xi, yi) {
            1
        } else {
            -1
        };
    }
    let bias = signed as f64 / trials as f64;
    let predicted = 4f64.powi(-2);
    assert!(
        (bias - predicted).abs() < 0.01,
        "abort-map bias {bias}, Lemma 3.2 predicts {predicted}"
    );
    // Shared randomness cannot beat the enumerated classical game value…
    assert!(
        bias <= game.classical_bias() + 0.01,
        "bias {bias} exceeds the classical value {}",
        game.classical_bias()
    );
    // …and the measured value recovers the paper's round lower bound:
    // any protocol mapped to bias β needs c ≥ ½·log₄(1/β) rounds.
    let c_lower = 0.5 * (1.0 / (bias + 0.01)).log(4.0);
    assert!(
        p.rounds() as f64 >= c_lower,
        "round count {} below the game-value bound {c_lower}",
        p.rounds()
    );
}

#[test]
fn lemma_3_2_and_game_value_bounds() {
    // AND-game side of Lemma 3.2, c = 1: on a NO instance the AND output
    // is *identically* 0 (an aborting player outputs 0, a surviving
    // Alice outputs the honest 0), so the game value on NO instances is
    // exact; on a YES instance the value is the survival rate 4^{-2c}.
    let p = InnerProductStreaming::new(2);
    let x = [true, false];
    let y_yes = [true, false]; // ⟨x,y⟩ = 1
    let y_no = [false, true]; // ⟨x,y⟩ = 0
    assert!(run_protocol(&p, &x, &y_yes));
    assert!(!run_protocol(&p, &x, &y_no));
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let trials = 60_000;
    let mut and_wins = 0usize;
    for _ in 0..trials {
        if abort_play(&p, &x, &y_yes, &mut rng).and_output {
            and_wins += 1;
        }
        assert!(
            !abort_play(&p, &x, &y_no, &mut rng).and_output,
            "AND value on a NO instance must be exactly 0"
        );
    }
    let rate = and_wins as f64 / trials as f64;
    assert!(
        (rate - 1.0 / 16.0).abs() < 0.01,
        "AND game value {rate} on the YES instance, expected 1/16"
    );
}

#[test]
fn tsirelson_is_attained() {
    let game = XorGame::chsh();
    let bias = game.entangled_bias(&chsh_optimal_strategy());
    assert!((bias - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-12);
    assert!(
        bias > game.classical_bias() + 0.2,
        "quantum advantage is real"
    );
}

#[test]
fn entanglement_is_not_communication() {
    // Holevo-flavored sanity check: measuring EPR halves yields perfectly
    // correlated but *uniform* bits — no input-dependent information
    // flows, which is why the paper's Ω(D) "limited sight" argument
    // survives entanglement.
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let mut ones = 0usize;
    for _ in 0..2000 {
        let (a, b) = qdc::quantum::protocols::shared_random_bit(&mut rng);
        assert_eq!(a, b);
        ones += usize::from(a);
    }
    let rate = ones as f64 / 2000.0;
    assert!(
        (rate - 0.5).abs() < 0.05,
        "shared bit must be unbiased, got {rate}"
    );
}
