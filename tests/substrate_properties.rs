//! Property tests on the substrates themselves: bit strings, messages,
//! simulator conservation laws, topologies, density matrices and
//! LE-lists across crates.

use proptest::prelude::*;
use qdc::congest::{topology, BitString, CongestConfig, Message, Simulator};
use qdc::graph::{algorithms, generate, NodeId};
use qdc::quantum::density::{entanglement_entropy, DensityMatrix};
use qdc::quantum::StateVector;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// BitString round-trips arbitrary (value, width) streams.
    #[test]
    fn bitstring_roundtrip(fields in prop::collection::vec((any::<u64>(), 1usize..=64), 1..10)) {
        let mut bits = BitString::new();
        for &(v, w) in &fields {
            let masked = if w == 64 { v } else { v & ((1u64 << w) - 1) };
            bits.push_uint(masked, w);
        }
        let mut r = bits.reader();
        for &(v, w) in &fields {
            let masked = if w == 64 { v } else { v & ((1u64 << w) - 1) };
            prop_assert_eq!(r.read_uint(w), Some(masked));
        }
        prop_assert_eq!(r.remaining(), 0);
    }

    /// to_bools/from_bools is the identity; message length is exact.
    #[test]
    fn bools_roundtrip(v in prop::collection::vec(any::<bool>(), 0..200)) {
        let b = BitString::from_bools(&v);
        prop_assert_eq!(b.to_bools(), v.clone());
        let m = Message::from_bits(b);
        prop_assert_eq!(m.bit_len(), v.len());
    }

    /// Simulator conservation: every sent message is delivered exactly
    /// once (count and bits agree between report and trace).
    #[test]
    fn traced_runs_conserve_messages(n in 4usize..20, seed in 0u64..200) {
        use qdc::congest::{Inbox, NodeAlgorithm, NodeInfo, Outbox};
        struct Echo { fired: bool }
        impl NodeAlgorithm for Echo {
            fn on_start(&mut self, _: &NodeInfo, out: &mut Outbox) {
                self.fired = true;
                out.broadcast(Message::from_uint(7, 4));
            }
            fn on_round(&mut self, _: &NodeInfo, _: &Inbox, _: &mut Outbox) {}
            fn is_terminated(&self) -> bool { self.fired }
        }
        let g = generate::random_connected(n, n, seed);
        let sim = Simulator::new(&g, CongestConfig::classical(8));
        let (_, report, trace) = sim.run_traced(|_| Echo { fired: false }, 10);
        let traced_msgs: usize = trace.rounds.iter().map(Vec::len).sum();
        let traced_bits: usize = trace.rounds.iter().flatten().map(|m| m.bits).sum();
        prop_assert_eq!(traced_msgs as u64, report.messages_sent);
        prop_assert_eq!(traced_bits as u64, report.bits_sent);
        prop_assert_eq!(report.messages_sent, 2 * g.edge_count() as u64);
    }

    /// Determinism across execution modes: `run`, `run_traced` and a
    /// `Stepper` driven to quiescence produce identical final states and
    /// identical `RunReport`s on random connected graphs. All three share
    /// one round engine, so any divergence would be a routing or
    /// buffer-reuse bug.
    #[test]
    fn run_traced_and_stepper_agree(n in 4usize..24, extra in 0usize..10, seed in 0u64..200) {
        use qdc::congest::{ChaosConfig, Inbox, NodeAlgorithm, NodeInfo, Outbox, Stepper};
        /// Min-label flood with implicit termination: forwards strictly
        /// improving labels, so runs last several rounds on sparse graphs.
        struct MinFlood { label: u64 }
        impl NodeAlgorithm for MinFlood {
            fn on_start(&mut self, _: &NodeInfo, out: &mut Outbox) {
                out.broadcast(Message::from_uint(self.label, 16));
            }
            fn on_round(&mut self, _: &NodeInfo, inbox: &Inbox, out: &mut Outbox) {
                let best = inbox.iter().filter_map(|(_, m)| m.as_uint(16)).min();
                if let Some(b) = best {
                    if b < self.label {
                        self.label = b;
                        out.broadcast(Message::from_uint(b, 16));
                    }
                }
            }
            fn is_terminated(&self) -> bool { true }
        }
        use qdc::congest::RunOptions;
        let g = generate::random_connected(n, n + extra, seed);
        let cfg = CongestConfig::classical(16);
        let make = |info: &NodeInfo| MinFlood { label: 1000 + info.id.0 as u64 };
        let sim = Simulator::new(&g, cfg);
        let (plain, plain_report) = sim.run(make, 100);
        let (traced, traced_report, trace) = sim.run_traced(make, 100);
        let mut stepper = Stepper::new(&g, cfg, make);
        while !stepper.is_quiescent() {
            stepper.step();
        }
        prop_assert_eq!(plain_report, traced_report);
        prop_assert_eq!(plain_report, stepper.report());
        for v in 0..g.node_count() {
            prop_assert_eq!(plain[v].label, traced[v].label);
            prop_assert_eq!(plain[v].label, stepper.nodes()[v].label);
            prop_assert_eq!(plain[v].label, 1000); // flood converged to the min
        }

        // A fourth mode: the sharded engine (3 compute threads) is the
        // same engine, so it joins the agreement — states, report, and
        // the traffic trace byte for byte.
        let sharded = Simulator::with_options(&g, cfg, RunOptions { threads: 3 });
        let (par, par_report, par_trace) = sharded.run_traced(make, 100);
        prop_assert_eq!(plain_report, par_report);
        prop_assert_eq!(trace.rounds, par_trace.rounds);
        for v in 0..g.node_count() {
            prop_assert_eq!(plain[v].label, par[v].label);
        }

        // The same agreement must hold under fault injection: batch,
        // traced and stepped execution share one engine consulting one
        // FaultPlan, so a fixed seed yields identical drops, corruptions,
        // crashes and final states in all three modes.
        let chaos = ChaosConfig {
            seed: seed ^ 0xC0FFEE,
            drop_prob: 0.15,
            crash_schedule: vec![(NodeId::from(n / 2), 2)],
            corrupt_prob: 0.05,
            max_rounds_watchdog: 100,
        };
        let (batch, batch_report) = sim.try_run(make, &chaos).expect("quiesces under faults");
        let (ctraced, ctraced_report, ctrace) =
            sim.try_run_traced(make, &chaos).expect("quiesces under faults");
        let mut cstepper = Stepper::with_chaos(&g, cfg, &chaos, make);
        while !cstepper.is_quiescent() {
            cstepper.step();
        }
        prop_assert_eq!(batch_report, ctraced_report);
        prop_assert_eq!(batch_report, cstepper.report());
        let traced_dropped: u64 = ctrace.dropped.iter().sum();
        prop_assert_eq!(traced_dropped, batch_report.messages_dropped);
        for v in 0..g.node_count() {
            prop_assert_eq!(batch[v].label, ctraced[v].label);
            prop_assert_eq!(batch[v].label, cstepper.nodes()[v].label);
        }

        // Under faults too: a sharded batch run and a sharded stepper
        // (built via `Stepper::with_options`) replay the same drops,
        // corruptions and crashes as the sequential modes.
        let (cpar, cpar_report) = sharded.try_run(make, &chaos).expect("quiesces under faults");
        let mut pstepper = Stepper::with_options(
            &g, cfg, RunOptions { threads: 2 }, Some(&chaos), make,
        );
        while !pstepper.is_quiescent() {
            pstepper.step();
        }
        prop_assert_eq!(batch_report, cpar_report);
        prop_assert_eq!(batch_report, pstepper.report());
        for v in 0..g.node_count() {
            prop_assert_eq!(batch[v].label, cpar[v].label);
            prop_assert_eq!(batch[v].label, pstepper.nodes()[v].label);
        }
    }

    /// Hypercube distances equal Hamming distances of the node labels.
    #[test]
    fn hypercube_metric_is_hamming(d in 2usize..7, a in any::<usize>(), b in any::<usize>()) {
        let g = topology::hypercube(d);
        let n = 1usize << d;
        let (a, b) = (a % n, b % n);
        let dist = algorithms::bfs_distances(&g, &g.full_subgraph(), NodeId::from(a));
        prop_assert_eq!(dist[b] as u32, ((a ^ b) as u64).count_ones());
    }

    /// Entanglement entropy is symmetric under complementary cuts of a
    /// pure state (Schmidt decomposition).
    #[test]
    fn pure_state_entropy_is_cut_symmetric(ops in prop::collection::vec((0usize..3, 0usize..3), 0..6)) {
        use qdc::quantum::gates;
        let mut psi = StateVector::zeros(3);
        psi.apply_single(gates::H, 0);
        for &(a, b) in &ops {
            if a != b {
                psi.apply_cnot(a, b);
            } else {
                psi.apply_single(gates::ry(0.7), a);
            }
        }
        let s01 = entanglement_entropy(&psi, &[0, 1]);
        let s2 = entanglement_entropy(&psi, &[2]);
        prop_assert!((s01 - s2).abs() < 1e-5, "{s01} vs {s2}");
    }

    /// Density matrices stay trace-1 and PSD-ish under partial trace.
    #[test]
    fn partial_trace_preserves_trace(theta in 0.0f64..3.1, phi in 0.0f64..6.2) {
        use qdc::quantum::gates;
        let mut psi = StateVector::zeros(2);
        psi.apply_single(gates::ry(theta), 0);
        psi.apply_single(gates::rz(phi), 0);
        psi.apply_cnot(0, 1);
        let rho = DensityMatrix::from_pure(&psi);
        for q in 0..2 {
            let red = rho.partial_trace_out(q);
            prop_assert!((red.trace() - 1.0).abs() < 1e-9);
            let eigs = red.eigenvalues();
            prop_assert!(eigs.iter().all(|&l| (-1e-6..=1.0 + 1e-6).contains(&l)));
        }
    }
}

/// The watchdog boundary: a round cap *exactly equal* to the quiescence
/// round completes normally in every execution mode — the engine checks
/// quiescence before the cap, so "just enough rounds" is enough. One
/// round fewer must cut the run short, in each mode's own idiom.
#[test]
fn max_rounds_equal_to_quiescence_round_completes() {
    use qdc::congest::{ChaosConfig, Inbox, NodeAlgorithm, NodeInfo, Outbox, Stepper};
    #[derive(Debug)]
    struct MinFlood {
        label: u64,
    }
    impl NodeAlgorithm for MinFlood {
        fn on_start(&mut self, _: &NodeInfo, out: &mut Outbox) {
            out.broadcast(Message::from_uint(self.label, 16));
        }
        fn on_round(&mut self, _: &NodeInfo, inbox: &Inbox, out: &mut Outbox) {
            let best = inbox.iter().filter_map(|(_, m)| m.as_uint(16)).min();
            if let Some(b) = best {
                if b < self.label {
                    self.label = b;
                    out.broadcast(Message::from_uint(b, 16));
                }
            }
        }
        fn is_terminated(&self) -> bool {
            true
        }
    }
    let g = qdc::graph::Graph::path(12);
    let cfg = CongestConfig::classical(16);
    let make = |info: &qdc::congest::NodeInfo| MinFlood {
        label: 1000 + info.id.0 as u64,
    };
    let sim = Simulator::new(&g, cfg);
    let (_, free) = sim.run(make, 1000);
    assert!(
        free.completed,
        "the flood quiesces well under the probe cap"
    );
    let q = free.rounds;
    assert!(q > 2, "the boundary is only interesting past the start");

    // Strict batch: the cap equal to Q completes; Q−1 does not.
    let (_, at) = sim.run(make, q);
    assert!(at.completed, "max_rounds == quiescence round must complete");
    assert_eq!(at.rounds, q);
    let (_, under) = sim.run(make, q - 1);
    assert!(!under.completed, "one round short must be cut off");

    // Lenient batch: a watchdog at exactly Q is not a trip.
    let ok = sim
        .try_run(make, &ChaosConfig::fault_free(q))
        .expect("watchdog == quiescence round must not trip");
    assert_eq!(ok.1, at, "fault-free lenient run matches the strict one");
    let err = sim
        .try_run(make, &ChaosConfig::fault_free(q - 1))
        .expect_err("one round short must trip the watchdog");
    assert_eq!(
        err,
        qdc::congest::SimError::WatchdogTripped { rounds: q - 1 }
    );

    // Stepper: run_to_quiescence(Q) lands exactly on quiescence.
    let mut stepper = Stepper::new(&g, cfg, make);
    let wd = stepper.run_to_quiescence(q);
    assert!(!wd.tripped, "a budget of exactly Q rounds suffices");
    assert_eq!(wd.rounds, q);
    assert!(stepper.is_quiescent());
    let mut short = Stepper::new(&g, cfg, make);
    assert!(short.run_to_quiescence(q - 1).tripped);
}

#[test]
fn distributed_le_lists_equal_sequential_on_topologies() {
    use qdc::algos::lel::distributed_le_lists;
    use qdc::graph::lel;
    for g in [
        topology::ring(9),
        topology::grid(3, 4),
        topology::hypercube(3),
    ] {
        let w = generate::random_weights(&g, 6, 3);
        let ranks: Vec<u64> = (0..g.node_count() as u64)
            .map(|i| (i * 37 + 5) % 997)
            .collect();
        let run = distributed_le_lists(&g, CongestConfig::classical(64), &w, &ranks);
        for v in g.nodes() {
            let mut reference = lel::le_list(&g, &w, &ranks, v);
            reference.sort();
            assert_eq!(run.lists[v.index()], reference, "node {v}");
        }
    }
}

#[test]
fn certificate_pipeline_is_printable_and_positive() {
    use qdc::core::certificates::{theorem36_certificate, CompositionConstants};
    let cert = theorem36_certificate(1 << 20, 32, &CompositionConstants::default());
    assert!(cert.rounds > 0.0);
    let text = cert.render();
    assert!(text.contains("Theorem 3.4"));
    assert!(text.contains("Theorem 3.5"));
    assert!(text.contains("⇒ T ≥"));
}
