//! Cross-crate integration tests: the Section 7 reduction pipeline,
//! property-tested over arbitrary inputs.

use proptest::prelude::*;
use qdc::cc::problems::{hamming_distance, IpMod3};
use qdc::gadgets::ham_to_st::verify_ham_via_spanning_tree;
use qdc::gadgets::{gapeq_to_ham, ipmod3_to_ham};
use qdc::graph::predicates;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Lemma C.3 for arbitrary inputs: G is Hamiltonian iff ⟨x,y⟩ ≢ 0
    /// (mod 3); otherwise exactly 3 cycles; both matchings perfect.
    #[test]
    fn ipmod3_reduction_invariants(
        pairs in prop::collection::vec((any::<bool>(), any::<bool>()), 1..60)
    ) {
        let x: Vec<bool> = pairs.iter().map(|p| p.0).collect();
        let y: Vec<bool> = pairs.iter().map(|p| p.1).collect();
        let inst = ipmod3_to_ham(&x, &y);
        let sub = inst.full_subgraph();
        let f = IpMod3::new(x.len());
        let residue = f.residue(&x, &y);
        prop_assert_eq!(
            predicates::is_hamiltonian_cycle(inst.graph(), &sub),
            residue != 0
        );
        let cycles = predicates::cycle_count_two_regular(inst.graph(), &sub).unwrap();
        prop_assert_eq!(cycles, if residue == 0 { 3 } else { 1 });
        prop_assert!(inst.both_sides_perfect_matchings());
        // 12 nodes per input bit (the reduction's constant c).
        prop_assert_eq!(inst.graph().node_count(), 12 * x.len());
    }

    /// Figure 7 for arbitrary inputs: cycles = Δ(x,y) + 1, Hamiltonian iff
    /// x = y.
    #[test]
    fn gapeq_reduction_invariants(
        pairs in prop::collection::vec((any::<bool>(), any::<bool>()), 1..60)
    ) {
        let x: Vec<bool> = pairs.iter().map(|p| p.0).collect();
        let y: Vec<bool> = pairs.iter().map(|p| p.1).collect();
        let inst = gapeq_to_ham(&x, &y);
        let sub = inst.full_subgraph();
        let delta = hamming_distance(&x, &y);
        let cycles = predicates::cycle_count_two_regular(inst.graph(), &sub).unwrap();
        prop_assert_eq!(cycles, delta + 1);
        prop_assert_eq!(
            predicates::is_hamiltonian_cycle(inst.graph(), &sub),
            x == y
        );
        prop_assert!(inst.both_sides_perfect_matchings());
    }

    /// The Theorem 3.6 reduction: deciding Ham via a spanning-tree oracle
    /// agrees with the direct predicate on every reduction instance.
    #[test]
    fn ham_via_st_oracle_agrees(
        pairs in prop::collection::vec((any::<bool>(), any::<bool>()), 1..40)
    ) {
        let x: Vec<bool> = pairs.iter().map(|p| p.0).collect();
        let y: Vec<bool> = pairs.iter().map(|p| p.1).collect();
        let inst = ipmod3_to_ham(&x, &y);
        let sub = inst.full_subgraph();
        prop_assert_eq!(
            verify_ham_via_spanning_tree(inst.graph(), &sub),
            predicates::is_hamiltonian_cycle(inst.graph(), &sub)
        );
    }

    /// Carol's side of the reduction is oblivious to y and vice versa —
    /// the defining property of a two-party reduction.
    #[test]
    fn reduction_sides_are_independent(
        x in prop::collection::vec(any::<bool>(), 1..30),
        y1 in prop::collection::vec(any::<bool>(), 1..30),
        y2 in prop::collection::vec(any::<bool>(), 1..30),
    ) {
        let n = x.len().min(y1.len()).min(y2.len());
        let x = &x[..n];
        let a = ipmod3_to_ham(x, &y1[..n]);
        let b = ipmod3_to_ham(x, &y2[..n]);
        let ends = |inst: &qdc::gadgets::TwoPartyGraphInstance| -> Vec<_> {
            inst.carol_edges().iter().map(|&e| inst.graph().endpoints(e)).collect()
        };
        prop_assert_eq!(ends(&a), ends(&b));
    }
}

#[test]
fn chained_residues_cover_all_three_classes() {
    // Deterministic instance hitting residues 0, 1, 2 in one suite run.
    for (ones, expected_cycles) in [(3usize, 3usize), (4, 1), (5, 1), (6, 3)] {
        let x = vec![true; ones];
        let y = vec![true; ones];
        let inst = ipmod3_to_ham(&x, &y);
        let cycles =
            predicates::cycle_count_two_regular(inst.graph(), &inst.full_subgraph()).unwrap();
        assert_eq!(cycles, expected_cycles, "ones = {ones}");
    }
}
