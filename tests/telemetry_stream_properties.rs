//! Property tests for the streaming telemetry plane: the O(1)-memory
//! [`StreamSink`] must be indistinguishable — counter for counter —
//! from the exact in-memory [`RoundProfiler`], and its artifacts must
//! compose.
//!
//! Four contracts on random connected graphs and seeds:
//!
//! 1. **Exactness (fault-free)**: a [`StreamSink`] observing the same
//!    run as a [`RoundProfiler`] reproduces its totals, per-round
//!    series, utilisation histogram, and — with sketch capacity at
//!    least the number of distinct keys — its hottest-edge/node
//!    rankings with zero error bound;
//! 2. **Exactness (chaos)**: the same under seeded drops, corruption,
//!    and a crash, including the fault counters;
//! 3. **Merge laws**: `merge(a, b) == merge(b, a)` for footer
//!    aggregates of unrelated runs, and merging an aggregate of zeroes
//!    is the identity on every counter;
//! 4. **Thread invariance**: a campaign run with streaming telemetry
//!    writes byte-identical archives at `--threads`/`--sim-threads`
//!    1 and 4, and those archives' footers match the totals of the
//!    exact-mode profiles of the same campaign.
//!
//! The CI chaos job re-runs these under several `QDC_CHAOS_SEED`
//! values; each individual case stays fully deterministic.

use proptest::prelude::*;
use qdc::algos::flood::{chaos_round_budget, robust_broadcast_observed};
use qdc::congest::{
    read_aggregate, ChaosConfig, CongestConfig, Inbox, Message, NodeAlgorithm, NodeInfo, Outbox,
    QubitSplit, RoundProfiler, Simulator, StreamAggregate, StreamSink, TelemetryReport,
};
use qdc::graph::{generate, Graph, NodeId};

/// CI-provided seed perturbation (defaults to 0 for local runs).
fn env_seed() -> u64 {
    std::env::var("QDC_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

/// Min-label flood with implicit termination (quiescence-driven).
struct MinFlood {
    label: u64,
}

impl NodeAlgorithm for MinFlood {
    fn on_start(&mut self, _: &NodeInfo, out: &mut Outbox) {
        out.broadcast(Message::from_uint(self.label, 16));
    }
    fn on_round(&mut self, _: &NodeInfo, inbox: &Inbox, out: &mut Outbox) {
        let best = inbox.iter().filter_map(|(_, m)| m.as_uint(16)).min();
        if let Some(b) = best {
            if b < self.label {
                self.label = b;
                out.broadcast(Message::from_uint(b, 16));
            }
        }
    }
    fn is_terminated(&self) -> bool {
        true
    }
}

/// A sketch capacity that makes both top-K trackers exact: at least one
/// slot per distinct key they can ever see.
fn exact_cap(g: &Graph) -> usize {
    g.edge_count().max(g.node_count()).max(1)
}

/// Asserts the streamed footer reproduces the exact profile: shared
/// totals, utilisation histogram, class split, and — in the exact
/// sketch regime — the full hottest-edge/node rankings with `err = 0`.
fn assert_stream_matches_profile(
    agg: &StreamAggregate,
    profile: &TelemetryReport,
) -> Result<(), TestCaseError> {
    let t = &agg.totals;
    prop_assert_eq!(t.rounds as usize, profile.rounds.len());
    prop_assert_eq!(t.messages, profile.total_messages());
    prop_assert_eq!(t.bits, profile.total_bits());
    prop_assert_eq!(t.dropped, profile.total_dropped());
    prop_assert_eq!(t.corrupted_bits, profile.total_corrupted_bits());
    let crashes: u64 = profile.rounds.iter().map(|r| r.crashes).sum();
    prop_assert_eq!(t.crashes, crashes);
    let quiescent = profile.rounds.iter().filter(|r| r.quiescent).count() as u64;
    prop_assert_eq!(t.quiescent, quiescent);
    for q in 0..5 {
        let fold: u64 = profile.rounds.iter().map(|r| r.util[q]).sum();
        prop_assert_eq!(t.util[q], fold, "util bucket {} diverged", q);
    }
    let split_fold: (u64, u64, u64) = profile.rounds.iter().fold((0, 0, 0), |acc, r| {
        (
            acc.0 + r.path_bits,
            acc.1 + r.highway_bits,
            acc.2 + r.cross_bits,
        )
    });
    prop_assert_eq!((t.path_bits, t.highway_bits, t.cross_bits), split_fold);

    // Qubit/classical split: the footer must fold the per-round splits
    // exactly, and be absent iff the profiler recorded none.
    let qsplit_fold =
        profile
            .rounds
            .iter()
            .filter_map(|r| r.qsplit)
            .fold(None::<QubitSplit>, |acc, q| {
                let mut acc = acc.unwrap_or_default();
                acc.classical_bits += q.classical_bits;
                acc.qubit_bits += q.qubit_bits;
                Some(acc)
            });
    prop_assert_eq!(t.qsplit, qsplit_fold, "footer qsplit diverged");

    // Exact regime: the sketch IS the full ranking, error-free.
    let edges = agg.top_edges.ranked();
    let exact = profile.hottest_edges(edges.len());
    prop_assert_eq!(edges.len(), exact.len());
    for (e, (index, totals)) in edges.iter().zip(&exact) {
        prop_assert_eq!(e.index, *index);
        prop_assert_eq!(e.bits, totals.bits);
        prop_assert_eq!(e.messages, totals.messages);
        prop_assert_eq!(e.err, 0, "exact regime must carry no error bound");
    }
    // Node ranking under the same (bits desc, index asc) contract; the
    // stream sink counts each delivery once at the sender and once at
    // the receiver, so the per-node weight is sent + received.
    let mut exact_nodes: Vec<(usize, u64, u64)> = profile
        .node_totals
        .iter()
        .enumerate()
        .map(|(i, n)| {
            (
                i,
                n.sent_bits + n.recv_bits,
                n.sent_messages + n.recv_messages,
            )
        })
        .filter(|&(_, bits, messages)| bits > 0 || messages > 0)
        .collect();
    exact_nodes.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let nodes = agg.top_nodes.ranked();
    prop_assert_eq!(nodes.len(), exact_nodes.len());
    for (e, (index, bits, messages)) in nodes.iter().zip(&exact_nodes) {
        prop_assert_eq!(e.index, *index);
        prop_assert_eq!(e.bits, *bits);
        prop_assert_eq!(e.messages, *messages);
        prop_assert_eq!(e.err, 0);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Fault-free: streaming aggregates equal the exact profiler's, and
    /// the bytes on the wire parse back to the sink's own footer.
    #[test]
    fn stream_sink_matches_exact_profiler_fault_free(
        n in 4usize..20,
        extra in 0usize..8,
        seed in 0u64..200,
    ) {
        let g = generate::random_connected(n, n + extra, seed ^ env_seed());
        let cfg = CongestConfig::classical(16);
        let make = |info: &NodeInfo| MinFlood { label: 1000 + info.id.0 as u64 };
        let sim = Simulator::new(&g, cfg);

        let mut profiler = RoundProfiler::new(g.node_count(), g.edge_count(), 16);
        let (exact_nodes, exact_report, _) = sim.run_traced_observed(make, 100, &mut profiler);
        let profile = profiler.finish();

        let mut sink = StreamSink::new(
            Vec::new(), g.node_count(), g.edge_count(), 16, exact_cap(&g),
        );
        let (stream_nodes, stream_report, _) = sim.run_traced_observed(make, 100, &mut sink);
        let agg = sink.finish().expect("Vec<u8> writes cannot fail");

        prop_assert_eq!(exact_report, stream_report);
        for (a, b) in exact_nodes.iter().zip(&stream_nodes) {
            prop_assert_eq!(a.label, b.label, "observation changed the algorithm");
        }
        assert_stream_matches_profile(&agg, &profile)?;
    }

    /// Chaos: the stream sink accounts every fault exactly as the
    /// profiler does, and the archive round-trips through the strict
    /// reader.
    #[test]
    fn stream_sink_matches_exact_profiler_under_chaos(
        n in 4usize..16,
        extra in 0usize..6,
        seed in 0u64..100,
        drop in 0.0f64..=0.25,
    ) {
        let g = generate::random_connected(n, n + extra, seed.wrapping_add(env_seed()));
        let give_up = chaos_round_budget(n, drop);
        let chaos = ChaosConfig {
            seed: seed ^ env_seed().rotate_left(29),
            drop_prob: drop,
            crash_schedule: vec![(NodeId(n as u32 - 1), 3)],
            corrupt_prob: 0.05,
            max_rounds_watchdog: give_up + 5,
        };
        let cfg = CongestConfig::classical(8);

        let mut profiler = RoundProfiler::new(g.node_count(), g.edge_count(), 8);
        let exact = robust_broadcast_observed(&g, cfg, NodeId(0), &chaos, give_up, &mut profiler);
        let profile = profiler.finish();

        let mut sink = StreamSink::new(
            Vec::new(), g.node_count(), g.edge_count(), 8, exact_cap(&g),
        );
        let streamed = robust_broadcast_observed(&g, cfg, NodeId(0), &chaos, give_up, &mut sink);

        match (exact, streamed) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(a.informed, b.informed);
                prop_assert_eq!(a.report, b.report);
            }
            (Err(a), Err(b)) => prop_assert_eq!(a.to_string(), b.to_string()),
            (a, b) => prop_assert!(false, "sink choice changed the outcome: {a:?} vs {b:?}"),
        }
        let agg = sink.finish().expect("Vec<u8> writes cannot fail");
        assert_stream_matches_profile(&agg, &profile)?;
    }

    /// Quantum accounting under chaos: the streaming sink and the exact
    /// profiler agree on the qubit/classical split — in plain qubit
    /// accounting and in EPR/teleportation charging mode alike — and
    /// the archive (whose strict reader cross-checks footer vs streamed
    /// round lines) round-trips.
    #[test]
    fn stream_sink_matches_exact_profiler_qsplit_under_chaos(
        n in 4usize..14,
        extra in 0usize..5,
        seed in 0u64..80,
        drop in 0.0f64..=0.2,
        teleport in any::<bool>(),
    ) {
        let g = generate::random_connected(n, n + extra, seed.wrapping_add(env_seed()));
        let give_up = chaos_round_budget(n, drop);
        let chaos = ChaosConfig {
            seed: seed ^ env_seed().rotate_left(17),
            drop_prob: drop,
            crash_schedule: vec![(NodeId(n as u32 - 1), 4)],
            corrupt_prob: 0.05,
            max_rounds_watchdog: give_up + 5,
        };
        // Teleportation charges 2 classical bits per qubit against the
        // same budget, so the teleport channel gets twice the width.
        let cfg = if teleport {
            CongestConfig::quantum_teleport(16)
        } else {
            CongestConfig::quantum(8)
        };
        let bandwidth = cfg.bandwidth_bits;

        let mut profiler = RoundProfiler::new(g.node_count(), g.edge_count(), bandwidth)
            .with_quantum(teleport);
        let exact = robust_broadcast_observed(&g, cfg, NodeId(0), &chaos, give_up, &mut profiler);
        let profile = profiler.finish();

        let mut sink = StreamSink::new(
            Vec::new(), g.node_count(), g.edge_count(), bandwidth, exact_cap(&g),
        ).with_quantum(teleport);
        let streamed = robust_broadcast_observed(&g, cfg, NodeId(0), &chaos, give_up, &mut sink);

        match (exact, streamed) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(a.informed, b.informed);
                prop_assert_eq!(a.report, b.report);
            }
            (Err(a), Err(b)) => prop_assert_eq!(a.to_string(), b.to_string()),
            (a, b) => prop_assert!(false, "sink choice changed the outcome: {a:?} vs {b:?}"),
        }
        let agg = sink.finish().expect("Vec<u8> writes cannot fail");
        assert_stream_matches_profile(&agg, &profile)?;

        // Every delivered bit is a qubit; teleport mode charges two
        // classical bits alongside each, plain mode none.
        let q = agg.totals.qsplit.expect("quantum sinks always record a split");
        prop_assert_eq!(q.qubit_bits, agg.totals.bits);
        let expected_classical = if teleport { 2 * agg.totals.bits } else { 0 };
        prop_assert_eq!(q.classical_bits, expected_classical);
    }

    /// Merge laws on real footers: commutative across unrelated runs,
    /// identity against an empty aggregate of the same shape.
    #[test]
    fn stream_merge_is_commutative_with_identity(
        n in 4usize..14,
        extra in 0usize..6,
        seed in 0u64..100,
    ) {
        let make = |info: &NodeInfo| MinFlood { label: 1000 + info.id.0 as u64 };
        let run = |nodes: usize, s: u64| {
            let g = generate::random_connected(nodes, nodes + extra, s);
            let sim = Simulator::new(&g, CongestConfig::classical(16));
            let mut sink = StreamSink::new(
                Vec::new(), g.node_count(), g.edge_count(), 16, exact_cap(&g),
            );
            sim.run_traced_observed(make, 100, &mut sink);
            sink.finish().expect("Vec<u8> writes cannot fail")
        };
        let a = run(n, seed ^ env_seed());
        let b = run(n + 1, (seed ^ env_seed()).wrapping_mul(31) + 7);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba, "merge must be commutative");

        // Counters compose additively under the merge.
        prop_assert_eq!(ab.totals.rounds, a.totals.rounds + b.totals.rounds);
        prop_assert_eq!(ab.totals.bits, a.totals.bits + b.totals.bits);
        prop_assert_eq!(ab.totals.messages, a.totals.messages + b.totals.messages);

        // Merging a same-shape empty aggregate changes nothing.
        let empty = StreamAggregate::new(
            a.header.nodes, a.header.edges, a.header.bandwidth, a.header.top_k,
        );
        let mut a_id = a.clone();
        a_id.merge(&empty);
        prop_assert_eq!(a_id, a, "the empty aggregate is the merge identity");
    }
}

/// A campaign with streaming telemetry writes byte-identical archives
/// at every thread count, and each footer matches the exact profile of
/// the same point. This is the end-to-end form of the byte-identity
/// acceptance criterion (the unit layers prove it for the sink alone).
#[test]
fn stream_campaign_archives_are_byte_identical_across_thread_counts() {
    use qdc::harness::{builtin, run_campaign, RunOptions, StreamTelemetry, TelemetryMode};

    let spec = builtin("telemetry_smoke").expect("builtin");
    let dir_for = |tag: &str| {
        let dir =
            std::env::temp_dir().join(format!("qdc_stream_prop_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    };
    let run = |dir: &std::path::Path, threads: usize, sim_threads: usize| {
        let options = RunOptions {
            threads,
            sim_threads,
            telemetry: TelemetryMode::Stream(StreamTelemetry::new(
                dir.to_string_lossy().into_owned(),
            )),
            ..RunOptions::default()
        };
        run_campaign(&spec, &options).expect("campaign runs")
    };

    let dir1 = dir_for("t1");
    let dir4 = dir_for("t4");
    let one = run(&dir1, 1, 1);
    let four = run(&dir4, 4, 4);
    assert_eq!(one.deterministic_jsonl(), four.deterministic_jsonl());
    // Stream mode keeps archives on disk, never in the outcome.
    assert!(one.telemetry.iter().all(Option::is_none));

    // Exact-mode reference profiles for the counter cross-check.
    let exact = run_campaign(
        &spec,
        &RunOptions {
            telemetry: TelemetryMode::Exact,
            ..RunOptions::default()
        },
    )
    .expect("campaign runs");

    for i in 0..spec.points().len() {
        let name = format!("point_{i}.telemetry.jsonl");
        let a = std::fs::read(dir1.join(&name)).expect("archive written");
        let b = std::fs::read(dir4.join(&name)).expect("archive written");
        assert_eq!(
            a, b,
            "archive {name} must be byte-identical at 1 vs 4 threads"
        );

        let agg = read_aggregate(&a[..]).expect("archive parses strictly");
        let profile = exact.telemetry[i].as_ref().expect("exact profile kept");
        assert_eq!(agg.totals.rounds as usize, profile.rounds.len());
        assert_eq!(agg.totals.messages, profile.total_messages());
        assert_eq!(agg.totals.bits, profile.total_bits());
        assert_eq!(agg.totals.dropped, profile.total_dropped());
        assert_eq!(agg.header.nodes, profile.nodes);
        assert_eq!(agg.header.edges, profile.edges);
        assert_eq!(agg.header.bandwidth, profile.bandwidth);
    }

    let _ = std::fs::remove_dir_all(&dir1);
    let _ = std::fs::remove_dir_all(&dir4);
}
