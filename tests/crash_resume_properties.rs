//! Kill-and-resume properties for the crash-safe campaign journal.
//!
//! The tentpole guarantee (see `crates/harness/src/journal.rs` and the
//! runner's journaled mode): a campaign interrupted at **any** point —
//! even mid-write, leaving a torn final line — and then resumed
//! produces a journal and aggregate **byte-identical** to an
//! uninterrupted run, at any thread count. These tests simulate every
//! such interruption deterministically:
//!
//! 1. **Every-prefix resume**: for each prefix of k committed points
//!    (and for each prefix further mangled with a torn tail), resuming
//!    completes the grid into the uninterrupted bytes — on 1 worker and
//!    on 4.
//! 2. **Random specs**: the same property over proptest-generated
//!    grids, interrupting at a random prefix.
//! 3. **Fault isolation**: a grid whose points panic inside the
//!    algorithm layer still commits one failure record per index,
//!    resumes cleanly, and never aborts the run.

use proptest::prelude::*;
use qdc::harness::{
    run_campaign, run_campaign_journaled, CampaignGrid, CampaignSpec, CancelToken, JournalConfig,
    RunOptions,
};

fn opts(threads: usize) -> RunOptions {
    RunOptions {
        threads,
        ..RunOptions::default()
    }
}

/// A scratch directory unique to this test (the suite runs tests in
/// parallel; path collisions would corrupt each other's journals).
fn scratch(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("qdc_crash_resume_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn config(out_path: &std::path::Path, resume: bool) -> JournalConfig {
    JournalConfig {
        out_path: out_path.to_string_lossy().into_owned(),
        resume,
        ..JournalConfig::default()
    }
}

/// Writes `prefix` (the first k lines of `full`, optionally with a torn
/// tail appended) as an interrupted journal, resumes, and asserts the
/// result is byte-identical to `full`.
fn resume_from_prefix(
    spec: &CampaignSpec,
    full: &str,
    out_path: &std::path::Path,
    prefix: &str,
    threads: usize,
) {
    std::fs::write(out_path, prefix).expect("seed interrupted journal");
    let outcome = run_campaign_journaled(
        spec,
        &opts(threads),
        &config(out_path, true),
        &CancelToken::new(),
    )
    .expect("resume succeeds");
    assert!(!outcome.interrupted);
    let resumed = std::fs::read_to_string(out_path).expect("journal readable");
    assert_eq!(
        resumed, full,
        "resume must reproduce the uninterrupted journal byte for byte"
    );
    assert_eq!(
        outcome.recovered + outcome.executed,
        outcome.total_points,
        "every point is accounted for exactly once"
    );
}

#[test]
fn resume_at_every_prefix_is_byte_identical() {
    let spec = qdc::harness::builtin("simthm_smoke").expect("builtin");
    let reference = run_campaign(&spec, &opts(1)).expect("reference run");
    let full = reference.deterministic_jsonl();
    let lines: Vec<&str> = full.lines().collect();
    let dir = scratch("every_prefix");
    let out_path = dir.join("journal.jsonl");

    for threads in [1usize, 4] {
        for k in 0..=lines.len() {
            let mut prefix: String = lines[..k].iter().map(|l| format!("{l}\n")).collect();
            resume_from_prefix(&spec, &full, &out_path, &prefix, threads);

            // The same prefix with a torn tail — a half-written line the
            // crash left behind. Recovery must truncate it on the record
            // boundary and re-run exactly that point.
            if k < lines.len() {
                prefix.push_str(&lines[k][..lines[k].len() / 2]);
                resume_from_prefix(&spec, &full, &out_path, &prefix, threads);
            }
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn interrupting_mid_write_leaves_a_recoverable_journal() {
    // Simulate the worst crash: the journal ends mid-byte at *every*
    // possible offset of the full file. Recovery must keep exactly the
    // complete lines and resume into the uninterrupted bytes.
    let spec = qdc::harness::builtin("telemetry_smoke").expect("builtin");
    let reference = run_campaign(&spec, &opts(1)).expect("reference run");
    let full = reference.deterministic_jsonl();
    let dir = scratch("mid_write");
    let out_path = dir.join("journal.jsonl");

    for cut in 0..=full.len() {
        resume_from_prefix(&spec, &full, &out_path, &full[..cut], 1);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn panicking_grid_journals_failures_and_resumes() {
    // B = 1 passes gadget validation but the algorithm layer's width
    // assertions blow up on every point; the journal must hold one
    // failure record per index, and a resume of the half-written
    // journal must complete to the same bytes.
    let spec = CampaignSpec {
        name: "panic_grid".into(),
        grid: CampaignGrid::Gadgets {
            bit_sizes: vec![4],
            seeds: vec![1],
            bandwidth: 1,
        },
    };
    let reference = run_campaign(&spec, &opts(2)).expect("panics are isolated");
    let total = spec.points().len();
    assert_eq!(reference.failures.len(), total, "every point fails");
    assert_eq!(reference.aggregate.points_failed, total as u64);
    let full = reference.deterministic_jsonl();
    for line in full.lines() {
        qdc::harness::validate_failure_line(line).expect("failure lines conform");
    }

    let dir = scratch("panic_grid");
    let out_path = dir.join("journal.jsonl");
    let first_line = full.lines().next().expect("at least one line");
    resume_from_prefix(&spec, &full, &out_path, &format!("{first_line}\n"), 2);
    std::fs::remove_dir_all(&dir).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random small grids, interrupted at a random committed prefix
    /// (with and without a torn tail), resumed on 1 and 4 workers.
    #[test]
    fn random_specs_survive_kill_and_resume(
        ((kind, axis_a, axis_b, seeds, drop_pm, bandwidth), cut_seed) in (
            (
                0usize..3,
                proptest::collection::vec(1usize..8, 1..3),
                proptest::collection::vec(1usize..10, 1..3),
                proptest::collection::vec(0u64..64, 1..3),
                proptest::collection::vec(0u32..300, 1..3),
                1usize..32,
            ),
            0usize..1000,
        )
    ) {
        let grid = match kind % 3 {
            0 => CampaignGrid::SimThm {
                gammas: axis_a,
                lengths: axis_b.into_iter().map(|l| l + 2).collect(),
                bandwidth: 16 + bandwidth,
            },
            1 => CampaignGrid::Chaos {
                nodes: 4 + axis_a[0] % 10,
                extra_edges: axis_b[0] % 5,
                drop_pm,
                seeds,
                bandwidth: bandwidth.max(2),
            },
            _ => CampaignGrid::Gadgets {
                bit_sizes: axis_a.into_iter().map(|b| b.min(6)).collect(),
                seeds,
                bandwidth: 32 + bandwidth,
            },
        };
        let spec = CampaignSpec { name: format!("prop_resume_{cut_seed}"), grid };
        prop_assert!(spec.validate().is_ok(), "generated specs are valid");
        let reference = run_campaign(&spec, &opts(1)).expect("reference run");
        let full = reference.deterministic_jsonl();
        let lines: Vec<&str> = full.lines().collect();
        let k = cut_seed % (lines.len() + 1);

        let dir = scratch(&format!("prop_{cut_seed}_{kind}"));
        let out_path = dir.join("journal.jsonl");
        for threads in [1usize, 4] {
            let mut prefix: String = lines[..k].iter().map(|l| format!("{l}\n")).collect();
            resume_from_prefix(&spec, &full, &out_path, &prefix, threads);
            if k < lines.len() {
                // Torn tail: cut the next line at a pseudo-random byte.
                let cut = 1 + cut_seed % lines[k].len().max(1);
                prefix.push_str(&lines[k][..cut.min(lines[k].len())]);
                resume_from_prefix(&spec, &full, &out_path, &prefix, threads);
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
