//! Cross-crate integration tests: every distributed algorithm agrees with
//! its sequential reference oracle on randomized instances.

use proptest::prelude::*;
use qdc::algos::mst::{mst_approx_sweep, mst_exact};
use qdc::algos::sssp::distributed_sssp;
use qdc::algos::verify::{
    verify_connectivity, verify_hamiltonian_cycle, verify_spanning_connected, verify_spanning_tree,
};
use qdc::congest::CongestConfig;
use qdc::graph::{algorithms, generate, predicates, NodeId, Subgraph};

fn cfg() -> CongestConfig {
    CongestConfig::classical(64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Distributed exact MST = Kruskal, edge set for edge set.
    #[test]
    fn mst_matches_kruskal(seed in 0u64..500, n in 8usize..28, wmax in 1u64..40) {
        let g = generate::random_connected(n, n, seed);
        let w = generate::random_weights(&g, wmax, seed + 1);
        let run = mst_exact(&g, cfg(), &w);
        let reference = algorithms::kruskal_mst(&g, &w);
        let mut got = run.edges.clone();
        let mut want = reference.edges.clone();
        got.sort();
        want.sort();
        prop_assert_eq!(got, want);
    }

    /// The Elkin-style sweep always returns a spanning tree within α.
    #[test]
    fn sweep_is_spanning_and_alpha_bounded(seed in 0u64..500, n in 8usize..24) {
        let g = generate::random_connected(n, 2 * n, seed);
        let w = generate::random_weights(&g, 32, seed + 7);
        let alpha = 2.0;
        let run = mst_approx_sweep(&g, cfg(), &w, alpha);
        let sub = Subgraph::from_edges(&g, run.edges.iter().copied());
        prop_assert!(predicates::is_spanning_tree(&g, &sub));
        let opt = algorithms::kruskal_mst(&g, &w).total_weight;
        prop_assert!(run.total_weight as f64 <= alpha * opt as f64 + 1e-9);
    }

    /// Distributed Bellman–Ford = Dijkstra.
    #[test]
    fn sssp_matches_dijkstra(seed in 0u64..500, n in 8usize..30) {
        let g = generate::random_connected(n, n, seed);
        let w = generate::random_weights(&g, 25, seed + 3);
        let run = distributed_sssp(&g, cfg(), &w, NodeId(0));
        prop_assert_eq!(run.dist, algorithms::dijkstra(&g, &w, NodeId(0)));
    }

    /// Every distributed verifier agrees with its predicate on random
    /// subnetworks M of random connected networks N.
    #[test]
    fn verifiers_match_predicates(seed in 0u64..500, n in 6usize..22, keep in 0u8..4) {
        let g = generate::random_connected(n, n, seed);
        let mut m = g.empty_subgraph();
        for (k, e) in g.edges().enumerate() {
            if (k as u64).wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(seed) % 4 <= keep as u64 {
                m.insert(e);
            }
        }
        prop_assert_eq!(
            verify_hamiltonian_cycle(&g, cfg(), &m).accept,
            predicates::is_hamiltonian_cycle(&g, &m)
        );
        prop_assert_eq!(
            verify_spanning_tree(&g, cfg(), &m).accept,
            predicates::is_spanning_tree(&g, &m)
        );
        prop_assert_eq!(
            verify_connectivity(&g, cfg(), &m).accept,
            predicates::is_connected(&g, &m)
        );
        prop_assert_eq!(
            verify_spanning_connected(&g, cfg(), &m).accept,
            predicates::is_spanning_connected_subgraph(&g, &m)
        );
    }
}

#[test]
fn verification_rounds_scale_like_sqrt_n_on_hard_networks() {
    // The Figure 2(b) shape as a regression test: rounds grow with n but
    // far slower than linearly.
    use qdc::simthm::SimulationNetwork;
    let mut rounds = Vec::new();
    let mut sizes = Vec::new();
    for &(gamma, l) in &[(6usize, 9usize), (13, 17), (27, 33)] {
        let mut net = SimulationNetwork::build(gamma, l);
        if net.track_count() % 2 == 1 {
            net = SimulationNetwork::build(gamma + 1, l);
        }
        let (carol, david) = generate::hamiltonian_matching_pair(net.track_count());
        let m = net.embed_matchings(&carol, &david);
        let run = verify_hamiltonian_cycle(net.graph(), cfg(), &m);
        assert!(run.accept);
        rounds.push(run.ledger.rounds as f64);
        sizes.push(net.graph().node_count() as f64);
    }
    let growth = rounds[2] / rounds[0];
    let size_growth = sizes[2] / sizes[0];
    assert!(
        growth < size_growth.sqrt() * 2.5,
        "rounds grew ×{growth:.2} for ×{size_growth:.2} nodes — not √n-like"
    );
    assert!(growth > 1.2, "rounds should grow with n, got ×{growth:.2}");
}

#[test]
fn shallow_light_guarantee_holds_on_hard_networks() {
    // Regression: the LAST construction must keep its α-radius guarantee
    // on the long-path simulation networks, not just on dense random
    // graphs (a scan-order overwrite once broke this).
    use qdc::graph::optimization::shallow_light_tree;
    use qdc::simthm::SimulationNetwork;
    for &(gamma, l, alpha) in &[(6usize, 17usize, 1.5f64), (11, 33, 2.0), (4, 65, 3.0)] {
        let net = SimulationNetwork::build(gamma, l);
        let g = net.graph();
        let w = generate::random_weights(g, 32, 5);
        let slt = shallow_light_tree(g, &w, NodeId(0), alpha);
        assert!(predicates::is_spanning_tree(g, &slt.tree));
        let d = algorithms::dijkstra(g, &w, NodeId(0));
        for v in g.nodes() {
            assert!(
                slt.root_distances[v.index()] as f64 <= alpha * d[v.index()] as f64 + 1e-9,
                "Γ={gamma}, L={l}, α={alpha}, node {v}"
            );
        }
        let mst = algorithms::kruskal_mst(g, &w).total_weight;
        assert!(slt.weight as f64 <= (1.0 + 2.0 / (alpha - 1.0)) * mst as f64 + 1e-9);
    }
}
