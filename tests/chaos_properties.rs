//! Property tests for the fault-injection layer.
//!
//! Two contracts are exercised on random connected graphs:
//!
//! 1. **Differential**: a `ChaosConfig` that injects nothing must make
//!    `try_run` reproduce the fault-free `run` bit for bit — same final
//!    states, same `RunReport`, zeroed fault counters. The chaos path is
//!    always compiled in, so this pins down that consulting an inert
//!    `FaultPlan` costs no behavioral change.
//! 2. **Robustness**: the acknowledgement-based `robust_broadcast`
//!    reaches every non-crashed node for seeded drop rates up to 0.3, as
//!    long as the residual graph stays connected.
//!
//! The CI chaos job re-runs these under several `QDC_CHAOS_SEED` values;
//! the seed perturbs every generated case while each individual run stays
//! fully deterministic.

use proptest::prelude::*;
use qdc::algos::flood::{chaos_round_budget, robust_broadcast};
use qdc::congest::{
    ChaosConfig, CongestConfig, Inbox, Message, NodeAlgorithm, NodeInfo, Outbox, RunOptions,
    Simulator,
};
use qdc::graph::{generate, Graph, NodeId};

/// CI-provided seed perturbation (defaults to 0 for local runs).
fn env_seed() -> u64 {
    std::env::var("QDC_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

/// Min-label flood with implicit termination (quiescence-driven).
struct MinFlood {
    label: u64,
}

impl NodeAlgorithm for MinFlood {
    fn on_start(&mut self, _: &NodeInfo, out: &mut Outbox) {
        out.broadcast(Message::from_uint(self.label, 16));
    }
    fn on_round(&mut self, _: &NodeInfo, inbox: &Inbox, out: &mut Outbox) {
        let best = inbox.iter().filter_map(|(_, m)| m.as_uint(16)).min();
        if let Some(b) = best {
            if b < self.label {
                self.label = b;
                out.broadcast(Message::from_uint(b, 16));
            }
        }
    }
    fn is_terminated(&self) -> bool {
        true
    }
}

/// Whether all nodes except `crashed` can reach node 0 without routing
/// through `crashed` (i.e. the residual graph is connected).
fn residual_connected(g: &Graph, crashed: NodeId) -> bool {
    let edges: Vec<(u32, u32)> = g
        .edges()
        .map(|e| g.endpoints(e))
        .map(|(a, b)| (a.0, b.0))
        .filter(|&(a, b)| a != crashed.0 && b != crashed.0)
        .collect();
    let residual = Graph::from_edges(g.node_count(), &edges);
    let dist =
        qdc::graph::algorithms::bfs_distances(&residual, &residual.full_subgraph(), NodeId(0));
    g.nodes()
        .filter(|&v| v != crashed)
        .all(|v| dist[v.index()] != u64::MAX)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Differential: the fault-free chaos path is byte-identical to the
    /// panicking fast path.
    #[test]
    fn chaos_free_try_run_matches_run_bit_for_bit(
        n in 4usize..24,
        extra in 0usize..10,
        seed in 0u64..200,
    ) {
        let g = generate::random_connected(n, n + extra, seed ^ env_seed());
        let cfg = CongestConfig::classical(16);
        let make = |info: &NodeInfo| MinFlood { label: 1000 + info.id.0 as u64 };
        let sim = Simulator::new(&g, cfg);
        let (plain, plain_report) = sim.run(make, 100);
        let chaos = ChaosConfig {
            seed: seed.wrapping_mul(31).wrapping_add(env_seed()),
            ..ChaosConfig::fault_free(100)
        };
        let (fallible, fallible_report) = sim.try_run(make, &chaos).expect("fault-free run quiesces");
        prop_assert_eq!(plain_report, fallible_report);
        prop_assert_eq!(fallible_report.messages_dropped, 0);
        prop_assert_eq!(fallible_report.nodes_crashed, 0);
        prop_assert_eq!(fallible_report.bits_corrupted, 0);
        for v in 0..g.node_count() {
            prop_assert_eq!(plain[v].label, fallible[v].label);
        }

        // The sharded engine is covered by the same differential: both
        // paths at 4 compute threads reproduce the 1-thread results bit
        // for bit (delivery and chaos stay sequential; only `on_round`
        // fans out).
        let sharded = Simulator::with_options(&g, cfg, RunOptions { threads: 4 });
        let (par, par_report) = sharded.run(make, 100);
        let (par_fallible, par_fallible_report) =
            sharded.try_run(make, &chaos).expect("fault-free run quiesces");
        prop_assert_eq!(plain_report, par_report);
        prop_assert_eq!(fallible_report, par_fallible_report);
        for v in 0..g.node_count() {
            prop_assert_eq!(plain[v].label, par[v].label);
            prop_assert_eq!(fallible[v].label, par_fallible[v].label);
        }
    }

    /// Robustness: the hardened flood informs every non-crashed node at
    /// seeded drop rates up to 0.3 when the residual graph is connected.
    #[test]
    fn chaos_robust_flood_informs_all_survivors(
        n in 4usize..20,
        extra in 0usize..8,
        seed in 0u64..100,
        drop in 0.0f64..=0.3,
        crash_pick in 1u32..1000,
    ) {
        let g = generate::random_connected(n, n + extra, seed.wrapping_add(env_seed()));
        let crashed = NodeId(1 + crash_pick % (n as u32 - 1)); // never the root
        // Only schedule the crash when the survivors stay connected —
        // otherwise stranded components are legitimately unreachable.
        let crash_schedule = if residual_connected(&g, crashed) {
            vec![(crashed, 2)]
        } else {
            Vec::new()
        };
        let crash_on = !crash_schedule.is_empty();
        let give_up = chaos_round_budget(n, drop);
        let chaos = ChaosConfig {
            seed: seed ^ env_seed().rotate_left(17),
            drop_prob: drop,
            crash_schedule,
            corrupt_prob: 0.05,
            max_rounds_watchdog: give_up + 5,
        };
        let out = robust_broadcast(&g, CongestConfig::classical(8), NodeId(0), &chaos, give_up)
            .expect("robust flood winds down within its budget");
        for v in g.nodes() {
            if crash_on && v == crashed {
                continue;
            }
            prop_assert!(
                out.informed[v.index()],
                "survivor {} stranded (n={}, drop={}, crash={:?})",
                v, n, drop, crash_on.then_some(crashed)
            );
        }
    }
}
