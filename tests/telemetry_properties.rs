//! Property tests for the telemetry layer: observation never perturbs.
//!
//! Two contracts on random connected graphs and seeds:
//!
//! 1. **Fault-free differential**: `run_traced_observed` with a
//!    [`RoundProfiler`] produces the same final states, `RunReport` and
//!    `TrafficTrace` as the unobserved `run_traced`, and folding the
//!    profile's per-round / per-edge / per-node counters reproduces the
//!    report's totals exactly.
//! 2. **Chaos differential**: the same holds for the fallible path —
//!    `robust_broadcast_observed` under seeded drops + corruption + a
//!    crash matches `robust_broadcast` bit for bit, with the profile
//!    additionally accounting every dropped message and corrupted bit.
//!
//! The CI chaos job re-runs these under several `QDC_CHAOS_SEED` values;
//! the seed perturbs every generated case while each individual run stays
//! fully deterministic.

use proptest::prelude::*;
use qdc::algos::flood::{
    chaos_round_budget, robust_broadcast, robust_broadcast_observed, robust_broadcast_with,
};
use qdc::congest::{
    ChaosConfig, CongestConfig, Inbox, Message, NodeAlgorithm, NodeInfo, Outbox, RoundProfiler,
    RunOptions, Simulator, TelemetryReport,
};
use qdc::graph::{generate, NodeId};

/// CI-provided seed perturbation (defaults to 0 for local runs).
fn env_seed() -> u64 {
    std::env::var("QDC_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

/// Min-label flood with implicit termination (quiescence-driven).
#[derive(PartialEq, Eq, Debug)]
struct MinFlood {
    label: u64,
}

impl NodeAlgorithm for MinFlood {
    fn on_start(&mut self, _: &NodeInfo, out: &mut Outbox) {
        out.broadcast(Message::from_uint(self.label, 16));
    }
    fn on_round(&mut self, _: &NodeInfo, inbox: &Inbox, out: &mut Outbox) {
        let best = inbox.iter().filter_map(|(_, m)| m.as_uint(16)).min();
        if let Some(b) = best {
            if b < self.label {
                self.label = b;
                out.broadcast(Message::from_uint(b, 16));
            }
        }
    }
    fn is_terminated(&self) -> bool {
        true
    }
}

/// Asserts the profile's three counter views (per-round, per-edge,
/// per-node) each sum to the same message/bit totals.
fn assert_internally_consistent(profile: &TelemetryReport) -> Result<(), TestCaseError> {
    let round_msgs: u64 = profile.rounds.iter().map(|r| r.messages).sum();
    let round_bits: u64 = profile.rounds.iter().map(|r| r.bits).sum();
    let edge_msgs: u64 = profile.edge_totals.iter().map(|e| e.messages).sum();
    let edge_bits: u64 = profile.edge_totals.iter().map(|e| e.bits).sum();
    let sent_msgs: u64 = profile.node_totals.iter().map(|n| n.sent_messages).sum();
    let recv_bits: u64 = profile.node_totals.iter().map(|n| n.recv_bits).sum();
    prop_assert_eq!(round_msgs, edge_msgs);
    prop_assert_eq!(round_bits, edge_bits);
    prop_assert_eq!(round_msgs, sent_msgs);
    prop_assert_eq!(round_bits, recv_bits);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Fault-free: observing a traced run changes nothing, and the
    /// profile's counters reproduce the report exactly.
    #[test]
    fn telemetry_observed_traced_run_is_bit_identical(
        n in 4usize..20,
        extra in 0usize..8,
        seed in 0u64..200,
    ) {
        let g = generate::random_connected(n, n + extra, seed ^ env_seed());
        let cfg = CongestConfig::classical(16);
        let make = |info: &NodeInfo| MinFlood { label: 1000 + info.id.0 as u64 };
        let sim = Simulator::new(&g, cfg);
        let (plain, plain_report, plain_trace) = sim.run_traced(make, 100);
        let mut profiler = RoundProfiler::new(g.node_count(), g.edge_count(), 16);
        let (observed, report, trace) = sim.run_traced_observed(make, 100, &mut profiler);
        let profile = profiler.finish();

        prop_assert_eq!(plain, observed);
        prop_assert_eq!(plain_report.clone(), report.clone());
        prop_assert_eq!(plain_trace.rounds, trace.rounds);

        prop_assert_eq!(profile.rounds.len(), report.rounds);
        prop_assert_eq!(profile.total_messages(), report.messages_sent);
        prop_assert_eq!(profile.total_bits(), report.bits_sent);
        prop_assert_eq!(profile.total_dropped(), 0);
        prop_assert_eq!(profile.total_corrupted_bits(), 0);
        assert_internally_consistent(&profile)?;
        // The last observed round is the quiescent one that ends the run.
        prop_assert!(profile.rounds.last().is_some_and(|r| r.quiescent));
    }

    /// Under chaos: the observed fallible path matches the plain one bit
    /// for bit, and the profile accounts every fault.
    #[test]
    fn telemetry_observed_chaos_run_accounts_every_fault(
        n in 4usize..16,
        extra in 0usize..6,
        seed in 0u64..100,
        drop in 0.0f64..=0.25,
    ) {
        let g = generate::random_connected(n, n + extra, seed.wrapping_add(env_seed()));
        let give_up = chaos_round_budget(n, drop);
        let chaos = ChaosConfig {
            seed: seed ^ env_seed().rotate_left(17),
            drop_prob: drop,
            crash_schedule: vec![(NodeId(n as u32 - 1), 3)],
            corrupt_prob: 0.05,
            max_rounds_watchdog: give_up + 5,
        };
        let cfg = CongestConfig::classical(8);
        let plain = robust_broadcast(&g, cfg, NodeId(0), &chaos, give_up);
        let mut profiler = RoundProfiler::new(g.node_count(), g.edge_count(), 8);
        let observed =
            robust_broadcast_observed(&g, cfg, NodeId(0), &chaos, give_up, &mut profiler);
        let profile = profiler.finish();

        match (plain, observed) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(a.informed, b.informed);
                prop_assert_eq!(a.report.clone(), b.report.clone());
                prop_assert_eq!(profile.rounds.len(), b.report.rounds);
                prop_assert_eq!(profile.total_messages(), b.report.messages_sent);
                prop_assert_eq!(profile.total_bits(), b.report.bits_sent);
                prop_assert_eq!(profile.total_dropped(), b.report.messages_dropped);
                prop_assert_eq!(profile.total_corrupted_bits(), b.report.bits_corrupted);
                let crashes: u64 = profile.rounds.iter().map(|r| r.crashes).sum();
                prop_assert_eq!(crashes, b.report.nodes_crashed);
            }
            (Err(a), Err(b)) => prop_assert_eq!(a.to_string(), b.to_string()),
            (a, b) => prop_assert!(false, "observation changed the outcome: {a:?} vs {b:?}"),
        }
        assert_internally_consistent(&profile)?;
        // The profile itself round-trips through its JSONL schema.
        let back = TelemetryReport::from_jsonl(&profile.to_jsonl(false))
            .expect("profile serializes validly");
        prop_assert_eq!(back.to_jsonl(false), profile.to_jsonl(false));
    }

    /// The sharded engine under chaos, observed: profiles produced at 1
    /// and 4 compute threads serialize to the same bytes, and the
    /// outcomes match — telemetry on or off, threads 1 or N, nothing
    /// moves.
    #[test]
    fn telemetry_sharded_chaos_profile_is_byte_identical(
        n in 4usize..16,
        extra in 0usize..6,
        seed in 0u64..100,
        drop in 0.0f64..=0.2,
    ) {
        let g = generate::random_connected(n, n + extra, seed.wrapping_add(env_seed()));
        let give_up = chaos_round_budget(n, drop);
        let chaos = ChaosConfig {
            seed: seed ^ env_seed().rotate_left(23),
            drop_prob: drop,
            crash_schedule: vec![(NodeId(n as u32 - 1), 3)],
            corrupt_prob: 0.05,
            max_rounds_watchdog: give_up + 5,
        };
        let cfg = CongestConfig::classical(8);
        let mut seq_prof = RoundProfiler::new(g.node_count(), g.edge_count(), 8);
        let seq = robust_broadcast_with(
            &g, cfg, RunOptions { threads: 1 }, NodeId(0), &chaos, give_up, &mut seq_prof,
        );
        let mut par_prof = RoundProfiler::new(g.node_count(), g.edge_count(), 8);
        let par = robust_broadcast_with(
            &g, cfg, RunOptions { threads: 4 }, NodeId(0), &chaos, give_up, &mut par_prof,
        );
        match (seq, par) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(a.informed, b.informed);
                prop_assert_eq!(a.report, b.report);
            }
            (Err(a), Err(b)) => prop_assert_eq!(a.to_string(), b.to_string()),
            (a, b) => prop_assert!(false, "thread count changed the outcome: {a:?} vs {b:?}"),
        }
        prop_assert_eq!(
            seq_prof.finish().to_jsonl(false),
            par_prof.finish().to_jsonl(false),
            "profiles must serialize to the same bytes at every thread count"
        );
    }

    /// Histogram mass conservation (the PR's accounting bugfix): each
    /// round's utilisation buckets sum to that round's *live* capacity —
    /// 2·|E| minus both directed slots of every edge with a crashed
    /// endpoint — computed here independently from the graph and the
    /// crash schedule alone.
    #[test]
    fn telemetry_histogram_mass_equals_live_capacity(
        n in 4usize..16,
        extra in 0usize..6,
        seed in 0u64..100,
        drop in 0.0f64..=0.2,
        crash_round in 1usize..6,
    ) {
        let g = generate::random_connected(n, n + extra, seed.wrapping_add(env_seed()));
        let give_up = chaos_round_budget(n, drop);
        let crashes = vec![
            (NodeId(n as u32 - 1), crash_round),
            (NodeId(n as u32 / 2), crash_round + 2),
        ];
        let chaos = ChaosConfig {
            seed: seed ^ env_seed().rotate_left(29),
            drop_prob: drop,
            crash_schedule: crashes.clone(),
            corrupt_prob: 0.05,
            max_rounds_watchdog: give_up + 5,
        };
        let mut profiler = RoundProfiler::new(g.node_count(), g.edge_count(), 8);
        let _ = robust_broadcast_observed(
            &g, CongestConfig::classical(8), NodeId(0), &chaos, give_up, &mut profiler,
        );
        let profile = profiler.finish();
        let live_capacity = |round: usize| -> u64 {
            let dead = |v: NodeId| crashes.iter().any(|&(c, r)| c == v && round >= r.max(1));
            2 * g.edges()
                .map(|e| g.endpoints(e))
                .filter(|&(a, b)| !dead(a) && !dead(b))
                .count() as u64
        };
        for r in &profile.rounds {
            let mass: u64 = r.util.iter().sum();
            prop_assert_eq!(
                mass,
                live_capacity(r.round),
                "round {}: histogram mass must equal live capacity",
                r.round
            );
        }
    }
}

/// The Γ×L hard-instance networks go through the same 1-vs-N contract:
/// the simulation-theorem adapter's outcome and profile are
/// byte-identical whether the round engine runs sequentially or sharded.
#[test]
fn telemetry_simthm_gamma_l_is_thread_invariant() {
    use qdc::simthm::campaign::{
        run_point, run_point_observed, run_point_observed_with, run_point_with, SimThmPoint,
    };
    for (gamma, l) in [(3, 5), (5, 9)] {
        let point = SimThmPoint {
            gamma,
            l,
            bandwidth: 24,
        };
        let seq = run_point(&point);
        let par = run_point_with(&point, RunOptions { threads: 4 });
        assert_eq!(seq.metrics, par.metrics, "Γ={gamma} L={l}");
        assert_eq!(seq.within_budget, par.within_budget);
        assert_eq!(seq.paid_bits, par.paid_bits);
        assert_eq!(seq.trace.rounds, par.trace.rounds);
        let (obs_seq, prof_seq) = run_point_observed(&point);
        let (obs_par, prof_par) = run_point_observed_with(&point, RunOptions { threads: 3 });
        assert_eq!(obs_seq.metrics, obs_par.metrics);
        assert_eq!(
            prof_seq.to_jsonl(false),
            prof_par.to_jsonl(false),
            "Γ={gamma} L={l}: profile bytes must not depend on threads"
        );
    }
}
