//! Golden-file conformance tests for the nine JSONL/JSON schemas the
//! workspace emits: `qdc-trace/v1`, `qdc-telemetry/v1`,
//! `qdc-telemetry-stream/v1`, `qdc-campaign-point/v1`,
//! `qdc-campaign-failure/v1`, `qdc-campaign/v1`, and the campaign
//! service's `qdc-job/v1`, `qdc-service-status/v1` and
//! `qdc-service-error/v1`.
//!
//! Each schema has a committed fixture under `tests/golden/`, generated
//! from a fixed, fully deterministic workload. The tests pin three
//! things per schema:
//!
//! 1. **Byte-exact emission**: the writer reproduces the fixture byte
//!    for byte (any formatting drift is a schema change and must be
//!    made deliberately, by regenerating);
//! 2. **Round-trip**: the strict parser accepts the fixture and
//!    re-serializes it byte-identically;
//! 3. **Rejection corpus**: truncation, an unknown field, a wrong
//!    version tag, a non-integer value and a leading-zero integer are
//!    each rejected with an error.
//!
//! The telemetry and campaign-point schemas additionally pin
//! quantum-channel fixtures (`telemetry_v1_quantum.jsonl`,
//! `telemetry_stream_v1_quantum.jsonl`, `campaign_point_ex11_v1.jsonl`)
//! exercising the optional `qsplit` qubit/classical accounting fields,
//! each with its own rejection corpus for malformed qubit fields.
//!
//! Regenerate fixtures after a deliberate schema change with:
//!
//! ```text
//! QDC_UPDATE_GOLDEN=1 cargo test --test golden_schemas
//! ```

use qdc::congest::{
    read_aggregate, ChaosConfig, CongestConfig, RoundProfiler, StreamAggregate, StreamSink,
    TelemetryReport, TrafficTrace,
};
use qdc::harness::{
    builtin, execute_point, failure_json, record_json, run_campaign, summary_json,
    validate_failure_line, validate_record_line, validate_summary, PointFailure, PointSpec,
    RunOptions,
};
use qdc::service::{
    job_json, status_json, submit_error_json, validate_error, validate_job, validate_status,
    QuotaConfig, ServiceCore, SubmitError,
};
use qdc::simthm::SimThmPoint;

fn golden_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Compares `produced` against the committed fixture, or rewrites the
/// fixture when `QDC_UPDATE_GOLDEN=1` is set.
fn assert_matches_golden(name: &str, produced: &str) {
    let path = golden_path(name);
    if std::env::var("QDC_UPDATE_GOLDEN").is_ok_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir");
        std::fs::write(&path, produced).expect("write fixture");
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing fixture {} ({e}); regenerate with QDC_UPDATE_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        produced,
        want,
        "writer output drifted from {}; if the change is deliberate, \
         regenerate with QDC_UPDATE_GOLDEN=1",
        path.display()
    );
}

/// The fixed trace workload: a seeded lossy min-label flood on a small
/// random graph (deterministic in the seed, exercises the dropped
/// counters in the round lines).
fn golden_trace() -> TrafficTrace {
    let g = qdc::graph::generate::random_connected(8, 3, 5);
    let chaos = ChaosConfig {
        seed: 5,
        drop_prob: 0.25,
        crash_schedule: Vec::new(),
        corrupt_prob: 0.0,
        max_rounds_watchdog: 200,
    };
    let sim = qdc::congest::Simulator::new(&g, CongestConfig::classical(8));
    let (_, _, trace) = sim
        .try_run_traced(
            |info| GoldenFlood {
                label: 100 + info.id.0 as u64,
            },
            &chaos,
        )
        .expect("fixed workload completes");
    trace
}

/// Min-label flood used by the trace fixture.
struct GoldenFlood {
    label: u64,
}

impl qdc::congest::NodeAlgorithm for GoldenFlood {
    fn on_start(&mut self, _: &qdc::congest::NodeInfo, out: &mut qdc::congest::Outbox) {
        out.broadcast(qdc::congest::Message::from_uint(self.label, 8));
    }
    fn on_round(
        &mut self,
        _: &qdc::congest::NodeInfo,
        inbox: &qdc::congest::Inbox,
        out: &mut qdc::congest::Outbox,
    ) {
        let best = inbox.iter().filter_map(|(_, m)| m.as_uint(8)).min();
        if let Some(b) = best {
            if b < self.label {
                self.label = b;
                out.broadcast(qdc::congest::Message::from_uint(b, 8));
            }
        }
    }
    fn is_terminated(&self) -> bool {
        true
    }
}

/// The fixed telemetry workload: the Γ=4, L=9 simulation-theorem point,
/// profiled with the highway/path classification (exercises the split).
fn golden_telemetry() -> TelemetryReport {
    let (_, profile) = qdc::simthm::campaign::run_point_observed(&SimThmPoint {
        gamma: 4,
        l: 9,
        bandwidth: 16,
    });
    profile
}

/// The fixed stream-telemetry workload: the same Γ=4, L=9,
/// B=16 simulation-theorem point as the exact fixture, streamed through
/// a classified [`StreamSink`] with top-k capacity 8 (small enough that
/// the sketches run in the approximation regime and the fixture pins
/// nonzero `err` bounds).
fn golden_stream_archive() -> (String, StreamAggregate) {
    let mut buf = Vec::new();
    let (_, sink) = qdc::simthm::campaign::run_point_sink_with(
        &SimThmPoint {
            gamma: 4,
            l: 9,
            bandwidth: 16,
        },
        qdc::congest::RunOptions::default(),
        |nodes, edges, classes| {
            StreamSink::new(&mut buf, nodes, edges, 16, 8).with_classes(classes)
        },
    );
    let agg = sink.finish().expect("in-memory write");
    (String::from_utf8(buf).expect("utf8 archive"), agg)
}

#[test]
fn golden_telemetry_stream_v1_byte_exact_round_trip() {
    let (text, agg) = golden_stream_archive();
    assert_matches_golden("telemetry_stream_v1.jsonl", &text);
    let back = read_aggregate(text.as_bytes()).expect("fixture parses");
    assert_eq!(
        back, agg,
        "the parsed footer equals the sink's own final aggregate"
    );
}

#[test]
fn golden_telemetry_stream_v1_rejection_corpus() {
    let (text, _) = golden_stream_archive();
    let without_footer: String = {
        let body = text.trim_end_matches('\n');
        let cut = body.rfind('\n').expect("multi-line archive");
        body[..=cut].to_string()
    };
    let cases = [
        (
            text.trim_end_matches('\n').to_string(),
            "truncated (missing final newline)",
        ),
        (without_footer, "archive ends before the footer"),
        (text.replacen("\"bits\"", "\"bitz\"", 1), "unknown field"),
        (
            text.replace("qdc-telemetry-stream/v1", "qdc-telemetry-stream/v9"),
            "wrong version tag",
        ),
        (
            text.replacen("\"round\":1,", "\"round\":1.5,", 1),
            "non-integer value",
        ),
        (
            text.replacen("\"round\":1,", "\"round\":01,", 1),
            "leading-zero integer",
        ),
        (
            // `"totals":{"rounds":` is unique to the footer (round lines
            // spell `"round"`), so this tampers the footer count without
            // touching the rounds it must summarize.
            text.replace("\"totals\":{\"rounds\":", "\"totals\":{\"rounds\":9"),
            "footer contradicting the streamed rounds",
        ),
    ];
    for (bad, why) in cases {
        let err = read_aggregate(bad.as_bytes()).expect_err(why);
        assert!(!err.to_string().is_empty(), "{why} must explain itself");
    }
}

/// The fixed quantum instance behind the qubit-split fixtures: the
/// b = 64 Example 1.1 pair with one planted intersection.
fn golden_quantum_instance() -> (Vec<bool>, Vec<bool>) {
    let mut x = qdc::graph::generate::random_bits(64, 164);
    let mut y: Vec<bool> = x.iter().map(|&v| !v).collect();
    x[32] = true;
    y[32] = true;
    (x, y)
}

/// The fixed quantum telemetry workload: seeded distributed-Grover
/// Disjointness on a 3-hop path under EPR/teleportation accounting, so
/// every round line carries a `qsplit` charging 2 classical bits per
/// delivered qubit.
fn golden_quantum_telemetry() -> TelemetryReport {
    let (x, y) = golden_quantum_instance();
    let mut profiler = RoundProfiler::new(4, 3, 16).with_quantum(true);
    let _ = qdc::algos::disjointness::quantum_disjointness_seeded(
        &x,
        &y,
        3,
        CongestConfig::quantum_teleport(16),
        11,
        qdc::congest::RunOptions::default(),
        &mut profiler,
    );
    profiler.finish()
}

/// The same quantum workload streamed through a [`StreamSink`] in
/// teleport accounting mode: round lines and the footer totals carry
/// the optional `qsplit` field.
fn golden_quantum_stream_archive() -> (String, StreamAggregate) {
    let (x, y) = golden_quantum_instance();
    let mut buf = Vec::new();
    let mut sink = StreamSink::new(&mut buf, 4, 3, 16, 8).with_quantum(true);
    let _ = qdc::algos::disjointness::quantum_disjointness_seeded(
        &x,
        &y,
        3,
        CongestConfig::quantum_teleport(16),
        11,
        qdc::congest::RunOptions::default(),
        &mut sink,
    );
    let agg = sink.finish().expect("in-memory write");
    (String::from_utf8(buf).expect("utf8 archive"), agg)
}

#[test]
fn golden_telemetry_v1_quantum_byte_exact_round_trip() {
    let profile = golden_quantum_telemetry();
    let text = profile.to_jsonl(false);
    assert_matches_golden("telemetry_v1_quantum.jsonl", &text);
    let back = TelemetryReport::from_jsonl(&text).expect("fixture parses");
    assert_eq!(back.to_jsonl(false), text, "round-trip is byte-exact");
    for r in &back.rounds {
        let q = r.qsplit.expect("quantum rounds carry the split");
        assert_eq!(
            q.classical_bits,
            2 * q.qubit_bits,
            "teleportation charges exactly 2 classical bits per qubit"
        );
    }
}

#[test]
fn golden_telemetry_v1_quantum_rejection_corpus() {
    let text = golden_quantum_telemetry().to_jsonl(false);
    assert!(
        text.contains("\"qsplit\":[12,6]"),
        "the fixture must exercise the qubit split: {text}"
    );
    let cases = [
        (
            text.replacen("\"qsplit\"", "\"qsplat\"", 1),
            "unknown field name",
        ),
        (
            text.replacen("\"qsplit\":[12,6]", "\"qsplit\":[12]", 1),
            "one-element split",
        ),
        (
            text.replacen("\"qsplit\":[12,6]", "\"qsplit\":[12,6,0]", 1),
            "three-element split",
        ),
        (
            text.replacen("\"qsplit\":[12,6]", "\"qsplit\":[12.5,6]", 1),
            "non-integer qubit count",
        ),
        (
            text.replacen("\"qsplit\":[12,6]", "\"qsplit\":[012,6]", 1),
            "leading-zero integer",
        ),
        (
            text.replacen("\"qsplit\":[12,6]", "\"qsplit\":[-12,6]", 1),
            "negative count",
        ),
    ];
    for (bad, why) in cases {
        let err = TelemetryReport::from_jsonl(&bad).expect_err(why);
        assert!(!err.to_string().is_empty(), "{why} must explain itself");
    }
}

#[test]
fn golden_telemetry_stream_v1_quantum_byte_exact_round_trip() {
    let (text, agg) = golden_quantum_stream_archive();
    assert_matches_golden("telemetry_stream_v1_quantum.jsonl", &text);
    let back = read_aggregate(text.as_bytes()).expect("fixture parses");
    assert_eq!(back.totals, agg.totals, "footer equals the sink's totals");
    let q = back.totals.qsplit.expect("quantum totals carry the split");
    assert_eq!(q.classical_bits, 2 * q.qubit_bits);
    assert_eq!(q.qubit_bits, back.totals.bits);
}

#[test]
fn golden_telemetry_stream_v1_quantum_rejection_corpus() {
    let (text, agg) = golden_quantum_stream_archive();
    let q = agg.totals.qsplit.expect("quantum totals carry the split");
    let footer_qsplit = format!(
        "\"qsplit\":[{},{}]}},\"top_edges\"",
        q.classical_bits, q.qubit_bits
    );
    assert!(
        text.contains(&footer_qsplit),
        "fixture footer must carry the split: {text}"
    );
    let cases = [
        (
            text.replace(
                &footer_qsplit,
                &format!(
                    "\"qsplit\":[{},{}]}},\"top_edges\"",
                    q.classical_bits + 1,
                    q.qubit_bits
                ),
            ),
            "footer contradicting the streamed splits",
        ),
        (
            text.replace(&footer_qsplit, "}.\"top_edges\""),
            "mangled footer",
        ),
        (
            text.replacen("\"qsplit\":[12,6]", "\"qsplit\":[12,6,1]", 1),
            "three-element round split",
        ),
        (
            text.replacen("\"qsplit\":[12,6]", "\"qsplit\":[1e1,6]", 1),
            "scientific-notation count",
        ),
    ];
    for (bad, why) in cases {
        let err = read_aggregate(bad.as_bytes()).expect_err(why);
        assert!(!err.to_string().is_empty(), "{why} must explain itself");
    }
}

/// The fixed Example 1.1 campaign record: the quantum b = 64 cell at
/// B = 16, D = 2 (every field a pure function of the spec — the Grover
/// measurement stream is protocol-seeded).
fn golden_ex11_record() -> String {
    let spec = PointSpec::Ex11 {
        bits: 64,
        bandwidth: 16,
        distance: 2,
        quantum: true,
    };
    let (rec, _) = execute_point(17, &spec).expect("golden point runs");
    record_json("golden", &rec, false) + "\n"
}

#[test]
fn golden_campaign_point_ex11_byte_exact_and_validated() {
    let line = golden_ex11_record();
    assert_matches_golden("campaign_point_ex11_v1.jsonl", &line);
    validate_record_line(line.trim_end()).expect("fixture conforms");
    assert!(
        line.contains("\"channel\":\"quantum\"") && line.contains("\"queries\""),
        "the ex11 record carries its channel and query count: {line}"
    );
}

#[test]
fn golden_campaign_point_ex11_rejection_corpus() {
    let line = golden_ex11_record();
    let line = line.trim_end();
    let cases = [
        (line[..line.len() - 2].to_string(), "truncated document"),
        (
            line.replace("\"channel\"", "\"chanel\""),
            "misspelled param key breaks the byte-exact emission contract",
        ),
        (
            line.replace("qdc-campaign-point/v1", "qdc-campaign-point/v2"),
            "wrong version tag",
        ),
        (
            line.replace("\"point\":17", "\"point\":17.5"),
            "non-integer point",
        ),
    ];
    for (bad, why) in cases {
        // The param-key mutation survives the shape validator (params
        // are an open object) but must fail the byte-exact golden — the
        // other three fail the strict validator outright.
        if bad.contains("chanel") {
            assert_ne!(bad, line, "{why}");
        } else {
            let err = validate_record_line(&bad).expect_err(why);
            assert!(!err.is_empty(), "{why} must explain itself");
        }
    }
}

/// The fixed point record: a deterministic lossy chaos point.
fn golden_record() -> String {
    let spec = PointSpec::Chaos {
        nodes: 8,
        extra_edges: 2,
        drop_pm: 250,
        seed: 4,
        bandwidth: 8,
    };
    let (rec, _) = execute_point(3, &spec).expect("golden point runs");
    record_json("golden", &rec, false) + "\n"
}

/// The fixed failure record: a deadline overrun committed after three
/// attempts (every field of the failure schema is a pure function of
/// the constructor arguments — nothing volatile to pin).
fn golden_failure() -> String {
    let mut failure = PointFailure::deadline(11, 250);
    failure.attempts = 3;
    failure_json("golden", &failure) + "\n"
}

/// The fixed campaign summary: the telemetry_smoke builtin with the
/// volatile wall-clock field pinned (wall time is the one legitimate
/// run-to-run difference; the fixture pins everything else).
fn golden_summary() -> String {
    let spec = builtin("telemetry_smoke").expect("builtin");
    let mut outcome = run_campaign(&spec, &RunOptions::default()).expect("runs");
    outcome.wall_ms = 7;
    summary_json(&outcome) + "\n"
}

#[test]
fn golden_trace_v1_byte_exact_round_trip() {
    let trace = golden_trace();
    let text = trace.to_jsonl();
    assert_matches_golden("trace_v1.jsonl", &text);
    let back = TrafficTrace::from_jsonl(&text).expect("fixture parses");
    assert_eq!(back.to_jsonl(), text, "round-trip is byte-exact");
}

#[test]
fn golden_trace_v1_rejection_corpus() {
    let text = golden_trace().to_jsonl();
    let cases = [
        (
            text.trim_end_matches('\n').to_string(),
            "truncated (missing final newline)",
        ),
        (text.replace("\"rounds\"", "\"roundz\""), "unknown field"),
        (
            text.replace("qdc-trace/v1", "qdc-trace/v9"),
            "wrong version tag",
        ),
        (
            text.replacen("\"from\":0", "\"from\":0.5", 1),
            "non-integer value",
        ),
        (
            text.replacen("\"from\":0", "\"from\":00", 1),
            "leading-zero integer",
        ),
    ];
    for (bad, why) in cases {
        let err = TrafficTrace::from_jsonl(&bad).expect_err(why);
        assert!(!err.to_string().is_empty(), "{why} must explain itself");
    }
}

#[test]
fn golden_telemetry_v1_byte_exact_round_trip() {
    let profile = golden_telemetry();
    let text = profile.to_jsonl(false);
    assert_matches_golden("telemetry_v1.jsonl", &text);
    let back = TelemetryReport::from_jsonl(&text).expect("fixture parses");
    assert_eq!(back.to_jsonl(false), text, "round-trip is byte-exact");
    // Structural equality holds on everything but the wall-clock spans,
    // which the deterministic form deliberately omits (parsed back as 0).
    assert_eq!(back.node_totals, profile.node_totals);
    assert_eq!(back.edge_totals, profile.edge_totals);
    assert_eq!(back.total_bits(), profile.total_bits());
}

/// The wall-clock form of the telemetry fixture: the same profile with
/// its volatile per-round spans pinned to a deterministic ramp (real
/// spans legitimately differ run to run; the fixture pins the schema,
/// not the timings).
fn golden_telemetry_wall() -> TelemetryReport {
    let mut profile = golden_telemetry();
    for (i, r) in profile.rounds.iter_mut().enumerate() {
        r.wall_ns = 1_000 * (i as u64 + 1);
    }
    profile
}

#[test]
fn golden_telemetry_v1_wall_byte_exact_round_trip() {
    let profile = golden_telemetry_wall();
    let text = profile.to_jsonl(true);
    assert_matches_golden("telemetry_v1_wall.jsonl", &text);
    let back = TelemetryReport::from_jsonl(&text).expect("fixture parses");
    assert_eq!(back.to_jsonl(true), text, "wall round-trip is byte-exact");
    for (a, b) in back.rounds.iter().zip(&profile.rounds) {
        assert_eq!(a.wall_ns, b.wall_ns, "spans survive the round-trip");
    }
    // Dropping the spans recovers the deterministic fixture exactly.
    assert_eq!(profile.to_jsonl(false), golden_telemetry().to_jsonl(false));
}

#[test]
fn golden_telemetry_v1_rejection_corpus() {
    let text = golden_telemetry().to_jsonl(false);
    let cases = [
        (
            text.trim_end_matches('\n').to_string(),
            "truncated (missing final newline)",
        ),
        (text.replacen("\"bits\"", "\"bitz\"", 1), "unknown field"),
        (
            text.replace("qdc-telemetry/v1", "qdc-telemetry/v2"),
            "wrong version tag",
        ),
        (
            text.replacen("\"round\":1", "\"round\":1.5", 1),
            "non-integer value",
        ),
        (
            text.replacen("\"round\":1", "\"round\":01", 1),
            "leading-zero integer",
        ),
    ];
    for (bad, why) in cases {
        let err = TelemetryReport::from_jsonl(&bad).expect_err(why);
        assert!(!err.to_string().is_empty(), "{why} must explain itself");
    }
}

#[test]
fn golden_campaign_point_v1_byte_exact_and_validated() {
    let line = golden_record();
    assert_matches_golden("campaign_point_v1.jsonl", &line);
    validate_record_line(line.trim_end()).expect("fixture conforms");
}

#[test]
fn golden_campaign_point_v1_rejection_corpus() {
    let line = golden_record();
    let line = line.trim_end();
    let cases = [
        (line[..line.len() - 2].to_string(), "truncated document"),
        (
            line.replace("\"bits_sent\"", "\"bits_cent\""),
            "unknown field",
        ),
        (
            line.replace("qdc-campaign-point/v1", "qdc-campaign-point/v0"),
            "wrong version tag",
        ),
        (
            line.replace("\"point\":3", "\"point\":3.5"),
            "non-integer value",
        ),
        (
            line.replace("\"point\":3", "\"point\":03"),
            "leading-zero integer",
        ),
    ];
    for (bad, why) in cases {
        let err = validate_record_line(&bad).expect_err(why);
        assert!(!err.is_empty(), "{why} must explain itself");
    }
}

#[test]
fn golden_campaign_failure_v1_byte_exact_and_validated() {
    let line = golden_failure();
    assert_matches_golden("campaign_failure_v1.jsonl", &line);
    validate_failure_line(line.trim_end()).expect("fixture conforms");
}

#[test]
fn golden_campaign_failure_v1_rejection_corpus() {
    let line = golden_failure();
    let line = line.trim_end();
    let cases = [
        (line[..line.len() - 2].to_string(), "truncated document"),
        (line.replace("\"kind\"", "\"kynd\""), "unknown field"),
        (
            line.replace("qdc-campaign-failure/v1", "qdc-campaign-failure/v0"),
            "wrong version tag",
        ),
        (
            line.replace("\"attempts\":3", "\"attempts\":3.5"),
            "non-integer value",
        ),
        (
            line.replace("\"retryable\":true", "\"retryable\":1"),
            "non-boolean retryable flag",
        ),
        (
            line.replace("\"attempts\":3", "\"attempts\":0"),
            "zero attempts (the first try counts)",
        ),
    ];
    for (bad, why) in cases {
        let err = validate_failure_line(&bad).expect_err(why);
        assert!(!err.is_empty(), "{why} must explain itself");
    }
}

#[test]
fn golden_campaign_v1_byte_exact_and_validated() {
    let summary = golden_summary();
    assert_matches_golden("campaign_v1.json", &summary);
    validate_summary(&summary).expect("fixture conforms");
}

/// The fixed service workload behind all three service fixtures: two
/// clients, one completed job (with its real deterministic aggregate),
/// one queued telemetry job — every field a pure function of the specs.
fn golden_service_core() -> ServiceCore {
    let mut core = ServiceCore::new(QuotaConfig::default());
    let spec = builtin("telemetry_smoke").expect("builtin");
    let aggregate = run_campaign(&spec, &RunOptions::default())
        .expect("runs")
        .aggregate;
    let done = core.submit("alice", spec, false).expect("admits");
    core.submit("bob", builtin("simthm_smoke").expect("builtin"), true)
        .expect("admits");
    let job = core.take_next().expect("dispatch");
    assert_eq!(job.id, done);
    core.finish(done, 2, aggregate, false);
    core
}

/// The fixed `qdc-job/v1` fixture: both jobs of the golden core, one
/// line each — a completed job with its aggregate tail, then a queued
/// one without.
fn golden_jobs() -> String {
    let core = golden_service_core();
    core.jobs()
        .map(|job| job_json(job) + "\n")
        .collect::<String>()
}

fn golden_service_status() -> String {
    status_json(&golden_service_core()) + "\n"
}

/// The fixed `qdc-service-error/v1` fixture: one line per rejection
/// class the submit path can produce, in status order.
fn golden_service_errors() -> String {
    [
        SubmitError::InvalidSpec(qdc::harness::CampaignError::EmptyName),
        SubmitError::QueueFull { depth: 64, max: 64 },
        SubmitError::ClientQueueFull { queued: 8, max: 8 },
        SubmitError::QuotaExceeded {
            requested: 32,
            active: 4090,
            max: 4096,
        },
    ]
    .iter()
    .map(|e| submit_error_json(e).1 + "\n")
    .collect()
}

#[test]
fn golden_job_v1_byte_exact_and_validated() {
    let lines = golden_jobs();
    assert_matches_golden("job_v1.jsonl", &lines);
    for line in lines.lines() {
        validate_job(line).expect("fixture conforms");
    }
    assert!(
        lines
            .lines()
            .next()
            .expect("two lines")
            .contains("\"aggregate\":{"),
        "the completed job carries its aggregate"
    );
    assert!(
        !lines
            .lines()
            .nth(1)
            .expect("two lines")
            .contains("aggregate"),
        "the queued job does not"
    );
}

#[test]
fn golden_job_v1_rejection_corpus() {
    let lines = golden_jobs();
    let line = lines.lines().next().expect("fixture line");
    let cases = [
        (line[..line.len() - 2].to_string(), "truncated document"),
        (line.replace("\"state\"", "\"stat\""), "unknown field"),
        (
            line.replace("qdc-job/v1", "qdc-job/v2"),
            "wrong version tag",
        ),
        (line.replace("\"id\":1", "\"id\":1.5"), "non-integer value"),
        (
            line.replace("\"id\":1", "\"id\":01"),
            "leading-zero integer",
        ),
        (
            line.replace("\"state\":\"completed\"", "\"state\":\"paused\""),
            "unknown state word",
        ),
    ];
    for (bad, why) in cases {
        let err = validate_job(&bad).expect_err(why);
        assert!(!err.is_empty(), "{why} must explain itself");
    }
}

#[test]
fn golden_service_status_v1_byte_exact_and_validated() {
    let status = golden_service_status();
    assert_matches_golden("service_status_v1.json", &status);
    validate_status(&status).expect("fixture conforms");
}

#[test]
fn golden_service_status_v1_rejection_corpus() {
    let status = golden_service_status();
    let cases = [
        (status[..status.len() - 3].to_string(), "truncated document"),
        (status.replace("\"queued\"", "\"qeued\""), "unknown field"),
        (
            status.replace("qdc-service-status/v1", "qdc-service-status/v0"),
            "wrong version tag",
        ),
        (
            status.replace("\"jobs\":2", "\"jobs\":2.5"),
            "non-integer value",
        ),
        (
            status.replace("\"jobs\":2", "\"jobs\":02"),
            "leading-zero integer",
        ),
        (
            status.replace("\"submitted\":1,", ""),
            "missing client counter",
        ),
    ];
    for (bad, why) in cases {
        let err = validate_status(&bad).expect_err(why);
        assert!(!err.is_empty(), "{why} must explain itself");
    }
}

#[test]
fn golden_service_error_v1_byte_exact_and_validated() {
    let lines = golden_service_errors();
    assert_matches_golden("service_error_v1.jsonl", &lines);
    for line in lines.lines() {
        validate_error(line).expect("fixture conforms");
    }
}

#[test]
fn golden_service_error_v1_rejection_corpus() {
    let lines = golden_service_errors();
    let line = lines.lines().next().expect("fixture line");
    let cases = [
        (line[..line.len() - 2].to_string(), "truncated document"),
        (line.replace("\"error\"", "\"erorr\""), "unknown field"),
        (
            line.replace("qdc-service-error/v1", "qdc-service-error/v2"),
            "wrong version tag",
        ),
        (
            line.replace("\"status\":400", "\"status\":400.5"),
            "non-integer value",
        ),
        (
            line.replace("\"status\":400", "\"status\":0400"),
            "leading-zero integer",
        ),
        (
            line.replace("\"status\":400", "\"status\":900"),
            "out-of-range status",
        ),
    ];
    for (bad, why) in cases {
        let err = validate_error(&bad).expect_err(why);
        assert!(!err.is_empty(), "{why} must explain itself");
    }
}

#[test]
fn golden_campaign_v1_rejection_corpus() {
    let summary = golden_summary();
    let cases = [
        (
            summary[..summary.len() - 3].to_string(),
            "truncated document",
        ),
        (
            summary.replace("\"accepted\"", "\"acepted\""),
            "unknown field",
        ),
        (
            summary.replace("qdc-campaign/v1", "qdc-campaign/v2"),
            "wrong version tag",
        ),
        (
            summary.replace("\"wall_ms\":7", "\"wall_ms\":7.5"),
            "non-integer value",
        ),
        (
            summary.replace("\"wall_ms\":7", "\"wall_ms\":07"),
            "leading-zero integer",
        ),
    ];
    for (bad, why) in cases {
        let err = validate_summary(&bad).expect_err(why);
        assert!(!err.is_empty(), "{why} must explain itself");
    }
}
