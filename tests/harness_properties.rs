//! Property tests for the campaign harness's determinism contract.
//!
//! The harness promises (see `crates/harness/src/runner.rs`):
//!
//! 1. **Thread invariance**: for any valid spec, the deterministic JSONL
//!    and the aggregate produced on 1 thread and on 4 threads are
//!    byte-for-byte identical.
//! 2. **Record fidelity**: the per-point record the runner emits matches
//!    a direct single-run execution of the same point — sharding adds
//!    nothing and loses nothing.
//!
//! Specs are generated randomly but kept small (a campaign point is a
//! full simulator run, so case counts are modest and deliberate).

use proptest::prelude::*;
use qdc::harness::{run_campaign, summary_json, CampaignGrid, CampaignSpec, PointSpec, RunOptions};

/// CI-provided seed perturbation (defaults to 0 for local runs).
fn env_seed() -> u64 {
    std::env::var("QDC_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

fn opts(threads: usize, sim_threads: usize) -> RunOptions {
    RunOptions {
        threads,
        sim_threads,
        ..RunOptions::default()
    }
}

/// Builds a random small-but-valid grid of the chosen kind from a flat
/// tuple of draws (the vendored proptest has no combinator layer, so the
/// mapping from raw draws to a structured grid lives here).
#[allow(clippy::too_many_arguments)]
fn make_grid(
    kind: usize,
    axis_a: Vec<usize>,
    axis_b: Vec<usize>,
    seeds: Vec<u64>,
    drop_pm: Vec<u32>,
    bandwidth: usize,
) -> CampaignGrid {
    match kind % 4 {
        0 => CampaignGrid::SimThm {
            // Draws are ≥ 1; lengths need ≥ 3. The flood sends id-width
            // words, so B must comfortably exceed log₂(node count).
            gammas: axis_a,
            lengths: axis_b.into_iter().map(|l| l + 2).collect(),
            bandwidth: 16 + bandwidth,
        },
        1 => CampaignGrid::Chaos {
            nodes: 4 + axis_a[0] % 10,
            extra_edges: axis_b[0] % 5,
            drop_pm,
            seeds,
            // Robust broadcast sends 2-bit token/ack words.
            bandwidth: bandwidth.max(2),
        },
        2 => CampaignGrid::Gadgets {
            bit_sizes: axis_a.into_iter().map(|b| b.min(6)).collect(),
            seeds,
            // The verifier's fragment engine convergecasts (size, weight,
            // edge-id) triples; same B as the gadget_sweep builtin.
            bandwidth: 32 + bandwidth,
        },
        // Both Disjointness channels — the quantum points exercise the
        // qubit-budgeted links under the same 1-vs-N-thread contract.
        _ => CampaignGrid::Ex11 {
            bits: axis_a.into_iter().map(|a| 8 << (a % 4)).collect(),
            // b ≤ 64 needs a 6-bit query register; 8 is the floor here.
            bandwidths: axis_b.into_iter().map(|b| 8 + (b % 8)).collect(),
            distances: seeds.iter().map(|s| 1 + (s % 4) as usize).collect(),
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Contract 1: thread count never changes the deterministic output.
    #[test]
    fn aggregate_is_thread_invariant(
        (kind, axis_a, axis_b, seeds, drop_pm, bandwidth) in (
            0usize..4,
            proptest::collection::vec(1usize..8, 1..3),
            proptest::collection::vec(1usize..10, 1..3),
            proptest::collection::vec(0u64..64, 1..3),
            proptest::collection::vec(0u32..300, 1..3),
            1usize..32,
        )
    ) {
        let spec = CampaignSpec {
            name: format!("prop_{}", seeds[0] ^ env_seed()),
            grid: make_grid(kind, axis_a, axis_b, seeds, drop_pm, bandwidth),
        };
        prop_assert!(spec.validate().is_ok(), "generated specs are valid");
        let one = run_campaign(&spec, &opts(1, 1)).expect("1-thread run");
        let four = run_campaign(&spec, &opts(4, 1)).expect("4-thread run");
        prop_assert_eq!(
            one.deterministic_jsonl(),
            four.deterministic_jsonl(),
            "per-point records must not depend on the thread count"
        );
        prop_assert_eq!(one.aggregate, four.aggregate);
        // The engine-level shard count is covered by the same contract:
        // sharding each point's compute phase must be invisible too.
        let sharded = run_campaign(&spec, &opts(2, 3)).expect("sim-threaded run");
        prop_assert_eq!(
            one.deterministic_jsonl(),
            sharded.deterministic_jsonl(),
            "per-point records must not depend on the engine shard count"
        );
        prop_assert_eq!(one.aggregate, sharded.aggregate);
        // The summary's deterministic core (the aggregate object) agrees
        // byte for byte; threads/wall_ms legitimately differ.
        prop_assert_eq!(
            one.aggregate.to_json().to_json(),
            four.aggregate.to_json().to_json()
        );
        // Both summaries are valid JSON documents.
        qdc::harness::json::parse(&summary_json(&one)).expect("summary parses");
        qdc::harness::json::parse(&summary_json(&four)).expect("summary parses");
    }

    /// Contract 2: a sharded record equals a direct single-run record.
    #[test]
    fn sharded_records_match_direct_execution(
        (kind, axis_a, axis_b, seeds, drop_pm, bandwidth) in (
            0usize..4,
            proptest::collection::vec(1usize..8, 1..3),
            proptest::collection::vec(1usize..10, 1..3),
            proptest::collection::vec(0u64..64, 1..3),
            proptest::collection::vec(0u32..300, 1..3),
            1usize..32,
        )
    ) {
        let spec = CampaignSpec {
            name: "prop_direct".to_string(),
            grid: make_grid(kind, axis_a, axis_b, seeds, drop_pm, bandwidth),
        };
        let out = run_campaign(&spec, &opts(3, 2)).expect("3-thread run");
        let points: Vec<PointSpec> = spec.points();
        prop_assert_eq!(out.records.len(), points.len());
        // Spot-check first and last points (a full re-run of every point
        // would double the test's cost for no extra coverage).
        for &i in &[0, points.len() - 1] {
            let (direct, _) = qdc::harness::execute_point(i, &points[i])
                .expect("generated points execute cleanly");
            let got = &out.records[i];
            prop_assert_eq!(got.index, direct.index);
            prop_assert_eq!(got.kind, direct.kind);
            prop_assert_eq!(&got.metrics, &direct.metrics);
            prop_assert_eq!(got.accept, direct.accept);
            prop_assert_eq!(&got.error, &direct.error);
            prop_assert_eq!(
                qdc::harness::record_json(&spec.name, got, false),
                qdc::harness::record_json(&spec.name, &direct, false)
            );
        }
    }
}
