//! Property tests for qubit-budgeted links: `CongestConfig::quantum(B)`
//! means at most `B` qubits per edge per round, and
//! `CongestConfig::quantum_teleport(B)` means EPR/teleportation
//! accounting — each teleported qubit is charged as 2 classical bits
//! against the same budget (paper Appendix B).
//!
//! Four contracts on random connected graphs and seeds:
//!
//! 1. **Per-edge cap**: no round of a quantum run ever delivers more
//!    than `B` charged qubits over any directed edge — fault-free and
//!    under chaos alike (drops and corruption only ever *remove*
//!    traffic: the truncate-never-extend rule keeps every surviving
//!    payload within its original width);
//! 2. **Teleportation factor**: in teleport mode the profiler's
//!    qubit/classical split charges exactly 2 classical bits per
//!    delivered qubit, round for round; in plain qubit mode the
//!    classical side stays zero;
//! 3. **Structured violations**: an oversized send under chaos surfaces
//!    as [`SimError::BudgetExceeded`] carrying the *charged* bit count
//!    (2× under teleportation), never a panic;
//! 4. **Channel neutrality**: with accounting disabled, a quantum run
//!    is mechanically identical to the classical engine — same states,
//!    rounds, traffic, and trace on the same topology and seed.

use proptest::prelude::*;
use qdc::congest::{
    ChaosConfig, CongestConfig, Inbox, Message, NodeAlgorithm, NodeInfo, Outbox, QubitSplit,
    RoundProfiler, SimError, Simulator,
};
use qdc::graph::generate;
use std::collections::HashMap;

/// CI-provided seed perturbation (defaults to 0 for local runs).
fn env_seed() -> u64 {
    std::env::var("QDC_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

/// Min-label flood: every node broadcasts a 16-qubit register whenever
/// its label improves, saturating the links early on.
struct MinFlood {
    label: u64,
    width: usize,
}

impl NodeAlgorithm for MinFlood {
    fn on_start(&mut self, _: &NodeInfo, out: &mut Outbox) {
        out.broadcast(Message::from_uint(self.label, self.width));
    }
    fn on_round(&mut self, _: &NodeInfo, inbox: &Inbox, out: &mut Outbox) {
        let best = inbox
            .iter()
            .filter_map(|(_, m)| m.as_uint(self.width))
            .min();
        if let Some(b) = best {
            if b < self.label {
                self.label = b;
                out.broadcast(Message::from_uint(b, self.width));
            }
        }
    }
    fn is_terminated(&self) -> bool {
        true
    }
}

/// Asserts no directed edge of `trace` carries more than `budget`
/// charged bits in any single round.
fn assert_per_edge_cap(
    trace: &qdc::congest::TrafficTrace,
    charge: usize,
    budget: usize,
) -> Result<(), TestCaseError> {
    for (r, round) in trace.rounds.iter().enumerate() {
        let mut per_edge: HashMap<(u32, u32), usize> = HashMap::new();
        for m in round {
            *per_edge.entry((m.from.0, m.to.0)).or_default() += m.bits * charge;
        }
        for (&(from, to), &bits) in &per_edge {
            prop_assert!(
                bits <= budget,
                "round {}: edge {}->{} carried {} charged bits over the B = {} budget",
                r + 1,
                from,
                to,
                bits,
                budget
            );
        }
    }
    Ok(())
}

/// A chaos config exercising drops and corruption but no crashes, so
/// quiescence is still reachable.
fn lossy(seed: u64, drop: f64, watchdog: usize) -> ChaosConfig {
    ChaosConfig {
        seed,
        drop_prob: drop,
        crash_schedule: Vec::new(),
        corrupt_prob: 0.1,
        max_rounds_watchdog: watchdog,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Contract 1, fault-free: a `quantum(B)` run never delivers more
    /// than B qubits per directed edge per round, and a
    /// `quantum_teleport(B)` run never more than B *charged* bits.
    #[test]
    fn quantum_links_respect_the_per_edge_qubit_budget(
        n in 4usize..20,
        extra in 0usize..8,
        seed in 0u64..200,
        teleport in any::<bool>(),
    ) {
        let g = generate::random_connected(n, n + extra, seed ^ env_seed());
        let cfg = if teleport {
            CongestConfig::quantum_teleport(32)
        } else {
            CongestConfig::quantum(16)
        };
        let budget = cfg.bandwidth_bits;
        let charge = cfg.charge_factor();
        prop_assert_eq!(charge, if teleport { 2 } else { 1 });

        let sim = Simulator::new(&g, cfg);
        let (_, report, trace) = sim.run_traced(
            |info| MinFlood { label: 1000 + info.id.0 as u64, width: 16 },
            200,
        );
        prop_assert!(report.completed);
        assert_per_edge_cap(&trace, charge, budget)?;
    }

    /// Contract 1, chaos: seeded drops and corruption can only shrink
    /// traffic (truncate-never-extend), so the charged per-edge cap
    /// holds on every surviving delivery too.
    #[test]
    fn quantum_links_respect_the_budget_under_chaos(
        n in 4usize..16,
        extra in 0usize..6,
        seed in 0u64..100,
        drop in 0.0f64..=0.25,
        teleport in any::<bool>(),
    ) {
        let g = generate::random_connected(n, n + extra, seed.wrapping_add(env_seed()));
        let cfg = if teleport {
            CongestConfig::quantum_teleport(32)
        } else {
            CongestConfig::quantum(16)
        };
        let budget = cfg.bandwidth_bits;
        let charge = cfg.charge_factor();
        let chaos = lossy(seed ^ env_seed().rotate_left(23), drop, 300);

        let sim = Simulator::new(&g, cfg);
        let (_, report, trace) = sim
            .try_run_traced(
                |info| MinFlood { label: 1000 + info.id.0 as u64, width: 16 },
                &chaos,
            )
            .expect("lossy flood reaches quiescence");
        assert_per_edge_cap(&trace, charge, budget)?;
        // Corruption flips bits in place, never widening a payload: the
        // per-message width bound survives verbatim.
        for round in &trace.rounds {
            for m in round {
                prop_assert!(m.bits * charge <= budget);
            }
        }
        let _ = report;
    }

    /// Contract 2: the telemetry split charges exactly 2 classical bits
    /// per teleported qubit, round for round, and none in plain mode.
    #[test]
    fn teleportation_charges_two_classical_bits_per_qubit(
        n in 4usize..16,
        extra in 0usize..6,
        seed in 0u64..100,
        teleport in any::<bool>(),
    ) {
        let g = generate::random_connected(n, n + extra, seed ^ env_seed());
        let cfg = if teleport {
            CongestConfig::quantum_teleport(32)
        } else {
            CongestConfig::quantum(16)
        };
        let sim = Simulator::new(&g, cfg);
        let mut profiler = RoundProfiler::new(g.node_count(), g.edge_count(), cfg.bandwidth_bits)
            .with_quantum(teleport);
        let (_, report, _) = sim.run_traced_observed(
            |info| MinFlood { label: 1000 + info.id.0 as u64, width: 16 },
            200,
            &mut profiler,
        );
        let profile = profiler.finish();

        let mut total = QubitSplit::default();
        for r in &profile.rounds {
            let q = r.qsplit.expect("quantum profiles carry a split every round");
            prop_assert_eq!(
                q.classical_bits,
                if teleport { 2 * q.qubit_bits } else { 0 },
                "round {} breaks the 2-bits-per-qubit charge", r.round
            );
            prop_assert_eq!(q.qubit_bits, r.bits);
            total.classical_bits += q.classical_bits;
            total.qubit_bits += q.qubit_bits;
        }
        prop_assert_eq!(total.qubit_bits, report.bits_sent);
    }

    /// Contract 4: with split accounting disabled, the quantum channel
    /// is mechanically the classical engine — identical states, report
    /// (modulo the channel label) and per-round trace.
    #[test]
    fn quantum_channel_without_split_is_byte_identical_to_classical(
        n in 4usize..16,
        extra in 0usize..6,
        seed in 0u64..100,
    ) {
        let g = generate::random_connected(n, n + extra, seed ^ env_seed());
        let make = |info: &NodeInfo| MinFlood { label: 1000 + info.id.0 as u64, width: 16 };

        let classical = Simulator::new(&g, CongestConfig::classical(16));
        let (c_nodes, c_report, c_trace) = classical.run_traced(make, 200);
        let quantum = Simulator::new(&g, CongestConfig::quantum(16));
        let (q_nodes, q_report, q_trace) = quantum.run_traced(make, 200);

        for (a, b) in c_nodes.iter().zip(&q_nodes) {
            prop_assert_eq!(a.label, b.label);
        }
        prop_assert_eq!(c_report.rounds, q_report.rounds);
        prop_assert_eq!(c_report.bits_sent, q_report.bits_sent);
        prop_assert_eq!(c_report.messages_sent, q_report.messages_sent);
        prop_assert_eq!(c_report.max_bits_per_round, q_report.max_bits_per_round);
        prop_assert_eq!(c_trace.to_jsonl(), q_trace.to_jsonl(), "traces must match byte for byte");
    }
}

/// One node that oversends a full-width register on a channel whose
/// teleportation charge doubles it past the budget.
#[derive(Debug)]
struct Oversender {
    width: usize,
    fired: bool,
}

impl NodeAlgorithm for Oversender {
    fn on_start(&mut self, info: &NodeInfo, out: &mut Outbox) {
        if info.id.0 == 0 {
            self.fired = true;
            out.send(0, Message::from_uint(0, self.width));
        }
    }
    fn on_round(&mut self, _: &NodeInfo, _: &Inbox, _: &mut Outbox) {}
    fn is_terminated(&self) -> bool {
        true
    }
}

/// Contract 3: an over-budget send under chaos comes back as a
/// structured [`SimError::BudgetExceeded`] carrying the charged amount
/// — 2× the payload under teleportation — instead of panicking.
#[test]
fn quantum_budget_violations_surface_as_structured_errors() {
    let g = qdc::graph::Graph::path(2);
    let chaos = lossy(7, 0.0, 50);

    // 24 qubits fit a B = 32 plain-quantum link…
    let sim = Simulator::new(&g, CongestConfig::quantum(32));
    let ok = sim.try_run(
        |_| Oversender {
            width: 24,
            fired: false,
        },
        &chaos,
    );
    assert!(ok.is_ok(), "24 qubits fit a 32-qubit budget: {ok:?}");

    // …but teleporting them charges 48 classical bits against the same
    // budget, and the error reports the charged figure.
    let sim = Simulator::new(&g, CongestConfig::quantum_teleport(32));
    let err = sim
        .try_run(
            |_| Oversender {
                width: 24,
                fired: false,
            },
            &chaos,
        )
        .expect_err("teleport charge must bust the budget");
    assert_eq!(
        err,
        SimError::BudgetExceeded {
            bits: 48,
            budget: 32
        }
    );

    // The panicking strict path reports the same charged figure.
    let sim = Simulator::new(&g, CongestConfig::quantum_teleport(32));
    let panic = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        sim.run(
            |_| Oversender {
                width: 24,
                fired: false,
            },
            50,
        )
    }))
    .expect_err("strict mode panics on the violation");
    let message = panic
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| panic.downcast_ref::<&str>().map(|s| (*s).to_string()))
        .unwrap_or_default();
    assert!(
        message.contains("48") && message.contains("32"),
        "panic must carry the charged accounting: {message}"
    );
}
