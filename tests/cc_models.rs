//! Cross-crate integration tests: communication-complexity models —
//! Server ⇄ two-party equivalence, fooling sets, codes, abort games.

use proptest::prelude::*;
use qdc::cc::codes::{binary_entropy, greedy_lexicographic_code, greedy_random_code};
use qdc::cc::fooling::gap_equality_fooling_set;
use qdc::cc::problems::{
    hamming_distance, Equality, GapEquality, InnerProduct, IpMod3, TwoPartyFunction,
};
use qdc::cc::server::{
    run_server, simulate_in_two_party, NormalFormProtocol, StreamedServerProtocol,
};
use qdc::cc::twoparty::Party;
use qdc::quantum::games::{abort_play, run_protocol, InnerProductStreaming, RoundBits};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// An inner-product protocol whose server pads every message with
/// arbitrary extra bits above the two Carol actually reads. Definition 3.1
/// charges nothing for server talk, so the pad must be invisible to both
/// the output and the cost accounting.
#[derive(Clone)]
struct PaddedIp {
    bits: usize,
    pad: u64,
}

impl NormalFormProtocol for PaddedIp {
    fn rounds(&self) -> usize {
        self.bits / 2
    }
    fn carol_bits(&self, x: &[bool], _: &[u64], t: usize) -> (bool, bool) {
        (x[2 * t], x[2 * t + 1])
    }
    fn david_bits(&self, y: &[bool], _: &[u64], t: usize) -> (bool, bool) {
        (y[2 * t], y[2 * t + 1])
    }
    fn server_messages(&self, received: &[RoundBits], t: usize) -> (u64, u64) {
        let ((c0, c1), (d0, d1)) = received[t];
        let to_carol = u64::from(d0) | (u64::from(d1) << 1) | (self.pad << 2);
        let to_david = u64::from(c0) | (u64::from(c1) << 1) | (self.pad << 2);
        (to_carol, to_david)
    }
    fn carol_output(&self, x: &[bool], server_to_carol: &[u64]) -> bool {
        let mut acc = false;
        for (t, &msg) in server_to_carol.iter().enumerate() {
            acc ^= x[2 * t] & (msg & 1 == 1);
            acc ^= x[2 * t + 1] & (msg & 2 == 2);
        }
        acc
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The §3.1 classical equivalence, property-tested: identical output,
    /// identical Carol/David bit cost, for three different functions.
    #[test]
    fn server_two_party_equivalence(
        x in prop::collection::vec(any::<bool>(), 1..40),
        y in prop::collection::vec(any::<bool>(), 1..40),
    ) {
        let n = x.len().min(y.len());
        let (x, y) = (&x[..n], &y[..n]);
        let eq = StreamedServerProtocol::new(Equality::new(n));
        let ip = StreamedServerProtocol::new(InnerProduct::new(n));
        let ip3 = StreamedServerProtocol::new(IpMod3::new(n));
        macro_rules! check {
            ($p:expr, $f:expr) => {{
                let sv = run_server(&$p, x, y);
                let tp = simulate_in_two_party(&$p, x, y);
                prop_assert_eq!(sv.output, tp.output);
                prop_assert_eq!(sv.cost(), tp.total_bits());
                prop_assert_eq!(sv.output, $f.evaluate(x, y));
            }};
        }
        check!(eq, Equality::new(n));
        check!(ip, InnerProduct::new(n));
        check!(ip3, IpMod3::new(n));
    }

    /// Gilbert–Varshamov codes really have their distance, and the
    /// fooling sets built from them verify against δ-Eq.
    #[test]
    fn gv_code_fooling_pipeline(n in 8usize..16, seed in 0u64..100) {
        let d = (n / 3).max(2);
        let code = greedy_lexicographic_code(n, d);
        prop_assert!(code.validate());
        let fs = gap_equality_fooling_set(&code, d - 1);
        prop_assert!(fs.verify(&GapEquality::new(n, d - 1)).is_ok());
        // Random variant agrees on the distance property.
        let rcode = greedy_random_code(n, d, 40, 5_000, seed);
        prop_assert!(rcode.validate());
    }

    /// Entropy bounds: H is symmetric, peaks at 1/2, and the GV rate is
    /// consistent with it.
    #[test]
    fn entropy_properties(p in 0.01f64..0.99) {
        prop_assert!((binary_entropy(p) - binary_entropy(1.0 - p)).abs() < 1e-12);
        prop_assert!(binary_entropy(p) <= 1.0 + 1e-12);
        prop_assert!(binary_entropy(p) > 0.0);
    }

    /// Lemma 3.2's abort plays: on survival the XOR output always equals
    /// the protocol's honest output (the simulation is perfect).
    #[test]
    fn abort_survivors_are_faithful(
        x in prop::collection::vec(any::<bool>(), 2..8),
        seed in 0u64..1000,
    ) {
        let n = (x.len() / 2) * 2;
        prop_assume!(n >= 2);
        let x = &x[..n];
        let y: Vec<bool> = x.iter().map(|&b| !b).collect();
        let p = InnerProductStreaming::new(n);
        let honest = run_protocol(&p, x, &y);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for _ in 0..200 {
            let play = abort_play(&p, x, &y, &mut rng);
            if play.survived {
                prop_assert_eq!(play.xor_output, honest);
            }
        }
    }

    /// Definition 3.1 accounting, property-tested: the cost is exactly
    /// the players' bits (`4·⌈n/2⌉` for the streaming upper bound), the
    /// server's verbosity is free, and the two-party simulation's
    /// transcript records one entry per charged bit — two Alice bits
    /// then two Bob bits, every round.
    #[test]
    fn definition_3_1_charges_exactly_the_player_bits(
        x in prop::collection::vec(any::<bool>(), 1..40),
        pad in any::<u64>(),
    ) {
        let n = x.len();
        let y: Vec<bool> = x.iter().rev().copied().collect();
        let p = StreamedServerProtocol::new(Equality::new(n));
        let sv = run_server(&p, &x, &y);
        prop_assert_eq!(sv.carol_bits, 2 * p.rounds());
        prop_assert_eq!(sv.david_bits, 2 * p.rounds());
        prop_assert_eq!(sv.cost(), 4 * n.div_ceil(2));
        let tp = simulate_in_two_party(&p, &x, &y);
        prop_assert_eq!(tp.transcript.len(), sv.cost());
        for (r, chunk) in tp.transcript.chunks(4).enumerate() {
            prop_assert_eq!(chunk[0].0, Party::Alice, "round {}", r);
            prop_assert_eq!(chunk[1].0, Party::Alice, "round {}", r);
            prop_assert_eq!(chunk[2].0, Party::Bob, "round {}", r);
            prop_assert_eq!(chunk[3].0, Party::Bob, "round {}", r);
        }
        // A server that pads every message costs exactly the same as a
        // terse one and computes the same value.
        let m = (n / 2) * 2;
        prop_assume!(m >= 2);
        let terse = PaddedIp { bits: m, pad: 0 };
        let bloated = PaddedIp { bits: m, pad: pad & ((1 << 62) - 1) };
        let a = run_server(&terse, &x[..m], &y[..m]);
        let b = run_server(&bloated, &x[..m], &y[..m]);
        prop_assert_eq!(a.output, b.output);
        prop_assert_eq!(a.output, InnerProduct::new(m).evaluate(&x[..m], &y[..m]));
        prop_assert_eq!(a.cost(), b.cost());
        prop_assert_eq!(b.cost(), 4 * bloated.rounds());
        prop_assert_eq!(simulate_in_two_party(&bloated, &x[..m], &y[..m]).total_bits(), b.cost());
    }

    /// Hamming distance is a metric on bit strings.
    #[test]
    fn hamming_is_a_metric(
        a in prop::collection::vec(any::<bool>(), 1..32),
        bseed in any::<u64>(),
        cseed in any::<u64>(),
    ) {
        let n = a.len();
        let flip = |s: u64| -> Vec<bool> {
            a.iter().enumerate()
                .map(|(i, &v)| v ^ (s.rotate_left(i as u32) & 1 == 1))
                .collect()
        };
        let b = flip(bseed);
        let c = flip(cseed);
        prop_assert_eq!(hamming_distance(&a, &a), 0);
        prop_assert_eq!(hamming_distance(&a, &b), hamming_distance(&b, &a));
        prop_assert!(
            hamming_distance(&a, &c) <= hamming_distance(&a, &b) + hamming_distance(&b, &c)
        );
        let _ = n;
    }
}

#[test]
fn server_model_bound_composition_matches_paper_shape() {
    // The Figure 1 left-to-middle arrows produce Ω(n) certificates whose
    // values scale linearly in n.
    use qdc::cc::norms::ipmod3_server_lower_bound;
    let b64 = ipmod3_server_lower_bound(64);
    let b256 = ipmod3_server_lower_bound(256);
    let b1024 = ipmod3_server_lower_bound(1024);
    assert!((b256 / b64 - 4.0).abs() < 1e-9);
    assert!((b1024 / b256 - 4.0).abs() < 1e-9);
}
