//! Property tests for the campaign service's deterministic core.
//!
//! The service promises (see `crates/service/src/core.rs`):
//!
//! 1. **Quota safety**: no interleaving of submissions, dispatches and
//!    completions ever leaves the queue over its bound or a client over
//!    its quota — and every rejection names the first violated rule
//!    with the numbers that prove it.
//! 2. **Accounting consistency**: the lifecycle counters always
//!    reconcile (every job is in exactly one state, client counters
//!    never run backwards).
//! 3. **Spec round-trip**: any shape-valid spec survives
//!    `spec_to_json → parse_spec` structurally and byte-exactly.
//! 4. **Journal triage**: cutting a real journal at *any* byte yields
//!    `Clean` exactly on record boundaries and `Recoverable` with the
//!    right prefix everywhere else — the classifier can never call a
//!    torn file clean or a clean file torn.

use proptest::prelude::*;
use qdc::harness::{
    builtin, parse_spec, run_campaign, spec_to_json, CampaignGrid, CampaignSpec, RunOptions,
};
use qdc::service::{JobState, JournalClass, QuotaConfig, ServiceCore, SubmitError};

/// One scripted operation against the core.
fn apply_op(
    core: &mut ServiceCore,
    running: &mut Vec<u64>,
    last_taken: &mut u64,
    op: u8,
    client: u8,
    which: u8,
    flag: bool,
) {
    let client = format!("client_{}", client % 4);
    match op % 4 {
        // Submit (half the weight: two opcodes).
        0 | 1 => {
            let spec = if which.is_multiple_of(2) {
                builtin("simthm_smoke").expect("builtin")
            } else {
                builtin("telemetry_smoke").expect("builtin")
            };
            let requested = spec.points().len() as u64;
            let queued_before = core.queued_jobs(&client);
            let active_before = core.active_points(&client);
            let depth_before = core.queue_depth();
            match core.submit(&client, spec, flag) {
                Ok(_) => {}
                Err(SubmitError::QueueFull { depth, max }) => {
                    assert_eq!(depth, depth_before);
                    assert!(depth >= max, "queue_full only fires at the bound");
                }
                Err(SubmitError::ClientQueueFull { queued, max }) => {
                    assert_eq!(queued, queued_before);
                    assert!(queued >= max, "client_queue_full only fires at the bound");
                    assert!(
                        depth_before < core.quotas().max_queue,
                        "the global bound is checked first"
                    );
                }
                Err(SubmitError::QuotaExceeded {
                    requested: r,
                    active,
                    max,
                }) => {
                    assert_eq!(r, requested);
                    assert_eq!(active, active_before);
                    assert!(active + r > max, "quota_exceeded only fires past the bound");
                }
                Err(SubmitError::InvalidSpec(_)) => {
                    panic!("builtins are valid; InvalidSpec is impossible here")
                }
            }
        }
        2 => {
            if let Some(job) = core.take_next() {
                // Nothing is re-enqueued in this test, so FIFO dispatch
                // means ids come out in strictly increasing order.
                assert!(job.id > *last_taken, "take_next honors FIFO order");
                *last_taken = job.id;
                running.push(job.id);
            }
        }
        _ => {
            if !running.is_empty() {
                let id = running.remove(usize::from(which) % running.len());
                let total = core.job(id).expect("running jobs exist").total_points;
                core.finish(id, total, Default::default(), flag);
            }
        }
    }
}

/// The invariants that must hold after every single operation.
fn check_invariants(core: &ServiceCore) {
    let quotas = core.quotas();
    assert!(
        core.queue_depth() <= quotas.max_queue,
        "queue depth within bound"
    );
    let by_state: usize = [
        JobState::Queued,
        JobState::Running,
        JobState::Completed,
        JobState::Interrupted,
    ]
    .iter()
    .map(|&s| core.count_in_state(s))
    .sum();
    assert_eq!(
        by_state,
        core.jobs().count(),
        "each job in exactly one state"
    );
    assert_eq!(
        core.count_in_state(JobState::Queued),
        core.queue_depth(),
        "queued state and queue agree"
    );
    for (client, stats) in core.clients() {
        assert!(
            core.queued_jobs(client) <= quotas.max_queued_per_client,
            "client queue within bound"
        );
        assert!(
            core.active_points(client) <= quotas.max_points_per_client,
            "client points within quota"
        );
        assert!(
            stats.completed <= stats.submitted,
            "completions never exceed submissions"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Contracts 1 and 2: random op sequences against tight quotas.
    #[test]
    fn service_core_quotas_hold_under_any_interleaving(
        ops in proptest::collection::vec(
            (0u8..4, 0u8..8, 0u8..8, any::<bool>()),
            1..60,
        )
    ) {
        let mut core = ServiceCore::new(QuotaConfig {
            max_queue: 5,
            max_queued_per_client: 2,
            max_points_per_client: 9,
        });
        let mut running = Vec::new();
        let mut last_taken = 0u64;
        for (op, client, which, flag) in ops {
            apply_op(&mut core, &mut running, &mut last_taken, op, client, which, flag);
            check_invariants(&core);
        }
        // Drain everything and confirm the quotas free up completely.
        while let Some(job) = core.take_next() {
            running.push(job.id);
        }
        for id in running.drain(..) {
            let total = core.job(id).expect("exists").total_points;
            core.finish(id, total, Default::default(), false);
        }
        check_invariants(&core);
        for (client, _) in core.clients() {
            prop_assert_eq!(core.active_points(client), 0, "drained clients hold no points");
        }
    }

    /// Contract 3: shape round-trip for arbitrary (even semantically
    /// invalid) grids — serialization must not depend on validation.
    #[test]
    fn service_spec_round_trips_any_shape(
        (kind, name_tag, axis_a, axis_b, seeds, (drop_pm, bandwidth)) in (
            0usize..3,
            0u64..1000,
            proptest::collection::vec(0usize..50, 0..4),
            proptest::collection::vec(0usize..50, 0..4),
            proptest::collection::vec(0u64..1000, 0..4),
            (proptest::collection::vec(0u32..1001, 0..4), 0usize..64),
        )
    ) {
        let grid = match kind {
            0 => CampaignGrid::SimThm {
                gammas: axis_a.clone(),
                lengths: axis_b.clone(),
                bandwidth,
            },
            1 => CampaignGrid::Chaos {
                nodes: axis_a.first().copied().unwrap_or(0),
                extra_edges: axis_b.first().copied().unwrap_or(0),
                drop_pm,
                seeds: seeds.clone(),
                bandwidth,
            },
            _ => CampaignGrid::Gadgets {
                bit_sizes: axis_a.clone(),
                seeds: seeds.clone(),
                bandwidth,
            },
        };
        let spec = CampaignSpec {
            name: format!("prop_{name_tag}"),
            grid,
        };
        let text = spec_to_json(&spec).to_json();
        let back = parse_spec(&text).expect("own output parses");
        prop_assert_eq!(&back, &spec, "structural round-trip");
        prop_assert_eq!(spec_to_json(&back).to_json(), text, "byte-exact round-trip");
    }

    /// Contract 4: the classifier's verdict at every cut point.
    #[test]
    fn service_journal_triage_is_exact_at_any_cut(cut_seed in 0usize..10_000) {
        let jsonl = run_campaign(
            &builtin("telemetry_smoke").expect("builtin"),
            &RunOptions::default(),
        )
        .expect("runs")
        .deterministic_jsonl();
        let mut cut = cut_seed % (jsonl.len() + 1);
        // Records are ASCII, so every index is already a boundary; the
        // clamp keeps the test meaningful if a future record isn't.
        while !jsonl.is_char_boundary(cut) {
            cut -= 1;
        }
        let prefix = &jsonl[..cut];
        let full_lines = prefix.matches('\n').count();
        let boundary = cut == 0 || prefix.ends_with('\n');
        match qdc::service::classify_journal(prefix, Some("telemetry_smoke")) {
            JournalClass::Clean { entries } => {
                prop_assert!(boundary, "clean verdicts only on record boundaries");
                prop_assert_eq!(entries, full_lines);
            }
            JournalClass::Recoverable { entries, kept_bytes, truncated_bytes } => {
                prop_assert!(!boundary, "boundary cuts must be clean");
                prop_assert_eq!(entries, full_lines);
                prop_assert_eq!(kept_bytes + truncated_bytes, cut, "every byte accounted for");
            }
            JournalClass::Foreign { reason } => {
                return Err(TestCaseError::fail(format!(
                    "a self-journal prefix can never be foreign: {reason}"
                )));
            }
        }
    }
}
