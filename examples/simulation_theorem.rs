//! The Quantum Simulation Theorem in action: run a real distributed
//! algorithm on the hard network, and watch Carol, David and the server
//! re-enact it with O(B log L) communication per round.
//!
//! ```sh
//! cargo run --release --example simulation_theorem
//! ```

use qdc::algos::verify::verify_hamiltonian_cycle;
use qdc::congest::{CongestConfig, Inbox, Message, NodeAlgorithm, NodeInfo, Outbox, Simulator};
use qdc::graph::generate;
use qdc::simthm::{audit_trace, Party, SimulationNetwork};

/// Minimum-label flood along M — the component-labeling heart of a
/// Hamiltonian-cycle verifier.
struct ComponentFlood {
    label: u64,
    active: Vec<bool>,
    width: usize,
}

impl NodeAlgorithm for ComponentFlood {
    fn on_start(&mut self, _info: &NodeInfo, out: &mut Outbox) {
        for p in 0..self.active.len() {
            if self.active[p] {
                out.send(p, Message::from_uint(self.label, self.width));
            }
        }
    }
    fn on_round(&mut self, _info: &NodeInfo, inbox: &Inbox, out: &mut Outbox) {
        let mut improved = false;
        for (port, msg) in inbox.iter() {
            if self.active[port] {
                if let Some(v) = msg.as_uint(self.width) {
                    if v < self.label {
                        self.label = v;
                        improved = true;
                    }
                }
            }
        }
        if improved {
            for p in 0..self.active.len() {
                if self.active[p] {
                    out.send(p, Message::from_uint(self.label, self.width));
                }
            }
        }
    }
    fn is_terminated(&self) -> bool {
        true
    }
}

fn main() {
    let net = SimulationNetwork::build(11, 33); // 11 paths + 5 highways
    let (carol_m, david_m) = generate::hamiltonian_matching_pair(net.track_count());
    let m = net.embed_matchings(&carol_m, &david_m);
    let bandwidth = 32;

    println!(
        "network N: Γ = {}, L = {}, k = {} highways, {} nodes, horizon L/2−2 = {}",
        net.path_count(),
        net.length(),
        net.highway_count(),
        net.graph().node_count(),
        net.horizon()
    );

    // Ownership at a few times (Equations 36–38).
    for t in [0usize, 3, net.horizon()] {
        let (mut c, mut d, mut s) = (0, 0, 0);
        for v in net.graph().nodes() {
            match net.owner(v, t) {
                Party::Carol => c += 1,
                Party::David => d += 1,
                Party::Server => s += 1,
            }
        }
        println!("t = {t:>2}: Carol owns {c:>4}, David owns {d:>4}, server owns {s:>4}");
    }

    // Run the component flood on the quantum channel and audit it.
    let width = qdc::algos::widths::id_width(net.graph().node_count());
    let cfg = CongestConfig::quantum(bandwidth);
    let sim = Simulator::new(net.graph(), cfg);
    let (nodes, report, trace) = sim.run_traced(
        |info| ComponentFlood {
            label: info.id.0 as u64,
            active: info.incident_edges.iter().map(|&e| m.contains(e)).collect(),
            width,
        },
        net.horizon(),
    );
    let audit = audit_trace(&net, &trace, bandwidth);
    println!(
        "\nflood ran {} rounds ({} qubits total on the network)",
        report.rounds, report.bits_sent
    );
    println!(
        "three-party audit: Carol paid {} qubits, David paid {}, max {}/round",
        audit.carol_bits, audit.david_bits, audit.max_paid_per_round
    );
    println!(
        "Theorem 3.5 budget 6kB = {} per round → within budget: {}",
        audit.per_round_budget, audit.within_budget
    );
    let all_same = nodes.windows(2).all(|w| w[0].label == w[1].label);
    println!(
        "labels converged within the horizon: {all_same} — {}",
        if all_same {
            "the flood finished early"
        } else {
            "as the theorem predicts: deciding Ham(M) needs more than L/2−2 rounds"
        }
    );

    // And the full multi-stage verifier agrees with ground truth.
    let run = verify_hamiltonian_cycle(net.graph(), CongestConfig::classical(64), &m);
    println!(
        "\ndistributed Ham verification: accept = {}, {} rounds over {} stages",
        run.accept, run.ledger.rounds, run.ledger.stages
    );
    println!("⇒ a T-round algorithm here yields a ≤ 6kB·T-bit Server protocol for Ham —");
    println!("  and Ham needs Ω(Γ) Server bits (Theorem 3.4), so T = Ω(Γ/(B log L)).");
}
