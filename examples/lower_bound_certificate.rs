//! Why quantumness doesn't help, end to end: Holevo says entanglement is
//! not communication, the Server model captures the residual quantum
//! power, and the composed certificate pins the round lower bound.
//!
//! ```sh
//! cargo run --release --example lower_bound_certificate
//! ```

use qdc::core::certificates::{theorem36_certificate, theorem38_certificate, CompositionConstants};
use qdc::quantum::density::{entanglement_entropy, holevo_chi, DensityMatrix};
use qdc::quantum::protocols::epr_pair;
use qdc::quantum::StateVector;

fn main() {
    // Step 0: entanglement carries no input information (Holevo): an EPR
    // half is maximally mixed — 1 ebit of correlation, 0 bits about any
    // input. This is why the Ω(D) "limited sight" argument survives
    // entanglement (paper §1).
    let epr = epr_pair();
    println!(
        "EPR pair: entanglement entropy across the cut = {:.4} ebit",
        entanglement_entropy(&epr, &[0])
    );
    let reduced = DensityMatrix::from_pure(&epr).partial_trace_out(1);
    println!(
        "Alice's half alone: purity {:.4} (maximally mixed — no information)",
        reduced.purity()
    );

    // One qubit can carry at most one classical bit (Holevo χ ≤ 1), even
    // from a 4-state ensemble:
    let states = [
        StateVector::basis(1, 0),
        StateVector::basis(1, 1),
        {
            let mut s = StateVector::zeros(1);
            s.apply_single(qdc::quantum::gates::H, 0);
            s
        },
        {
            let mut s = StateVector::zeros(1);
            s.apply_single(qdc::quantum::gates::H, 0);
            s.apply_single(qdc::quantum::gates::Z, 0);
            s
        },
    ];
    let ensemble: Vec<(f64, DensityMatrix)> = states
        .iter()
        .map(|s| (0.25, DensityMatrix::from_pure(s)))
        .collect();
    println!(
        "Holevo χ of a 4-state qubit ensemble: {:.4} ≤ 1 bit per qubit\n",
        holevo_chi(&ensemble)
    );

    // Steps 1–3: the composed certificates, constants explicit.
    let consts = CompositionConstants::default();
    println!("{}", theorem36_certificate(1 << 20, 32, &consts).render());
    println!(
        "{}",
        theorem38_certificate(1 << 20, 32, 4096.0, 2.0, &consts).render()
    );

    println!("So: entanglement gives correlations, not bits; what quantum communication");
    println!("can still do is captured by the Server model, whose Ω(Γ) hardness survives");
    println!("the simulation — and the collision forces the Ω̃(√n) round bound above.");
}
