//! Round-by-round execution: drive a min-label flood with the
//! [`Stepper`](qdc::congest::Stepper), watching per-round traffic die
//! down to quiescence, then confirm the stepped run agrees exactly with
//! the batch `Simulator::run` — they share one round engine.
//!
//! ```sh
//! cargo run --release --example stepper
//! ```

use qdc::congest::{
    CongestConfig, Inbox, Message, NodeAlgorithm, NodeInfo, Outbox, Simulator, Stepper,
};
use qdc::graph::generate;

/// Min-label flood with implicit termination: forward strictly improving
/// labels, stay silent otherwise.
struct MinFlood {
    label: u64,
}

impl NodeAlgorithm for MinFlood {
    fn on_start(&mut self, _: &NodeInfo, out: &mut Outbox) {
        out.broadcast(Message::from_uint(self.label, 16));
    }
    fn on_round(&mut self, _: &NodeInfo, inbox: &Inbox, out: &mut Outbox) {
        let best = inbox.iter().filter_map(|(_, m)| m.as_uint(16)).min();
        if let Some(b) = best {
            if b < self.label {
                self.label = b;
                out.broadcast(Message::from_uint(b, 16));
            }
        }
    }
    fn is_terminated(&self) -> bool {
        true
    }
}

fn main() {
    let g = generate::random_connected(40, 70, 7);
    let cfg = CongestConfig::classical(16);
    let make = |info: &NodeInfo| MinFlood {
        label: 1000 + info.id.0 as u64,
    };

    println!("min-label flood on a random connected graph (n = 40, m = 70)\n");
    let mut stepper = Stepper::new(&g, cfg, make);
    while !stepper.is_quiescent() {
        let s = stepper.step();
        println!(
            "round {:>2}: {:>3} messages, {:>5} bits",
            s.round, s.messages, s.bits
        );
    }
    let report = stepper.report();
    println!(
        "\nquiescent after {} rounds: {} messages, {} bits total",
        report.rounds, report.messages_sent, report.bits_sent
    );

    // Stepping past quiescence is a no-op.
    let idle = stepper.step();
    println!(
        "step at quiescence: round {}, {} messages (no-op)",
        idle.round, idle.messages
    );

    // The batch run agrees bit for bit — same engine underneath.
    let sim = Simulator::new(&g, cfg);
    let (nodes, batch) = sim.run(make, 1000);
    assert_eq!(batch, report);
    assert!(nodes
        .iter()
        .zip(stepper.nodes())
        .all(|(a, b)| a.label == b.label));
    println!("batch run agrees: {batch:?}");
}
