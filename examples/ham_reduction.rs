//! Walkthrough of the Section 7 reduction: from an `IPmod3` instance to a
//! Hamiltonian-cycle instance, gadget by gadget.
//!
//! ```sh
//! cargo run --release --example ham_reduction
//! ```

use qdc::cc::problems::{IpMod3, TwoPartyFunction};
use qdc::gadgets::ipmod3_ham::gadget_permutation;
use qdc::gadgets::{gapeq_to_ham, ipmod3_to_ham};
use qdc::graph::predicates;

fn main() {
    // Carol holds x, David holds y; they want Σ xᵢyᵢ mod 3.
    let x = vec![true, true, false, true, true, false, true, false];
    let y = vec![true, false, false, true, true, true, true, true];
    let f = IpMod3::new(x.len());
    println!(
        "x = {:?}",
        x.iter().map(|&b| u8::from(b)).collect::<Vec<_>>()
    );
    println!(
        "y = {:?}",
        y.iter().map(|&b| u8::from(b)).collect::<Vec<_>>()
    );
    println!(
        "⟨x,y⟩ mod 3 = {} ⇒ IPmod3(x,y) = {}\n",
        f.residue(&x, &y),
        f.evaluate(&x, &y)
    );

    // Each input bit pair becomes a 3-track gadget whose permutation is a
    // cyclic shift by 2·xᵢyᵢ (Observation 7.1).
    println!("per-gadget track permutations (Figure 5):");
    let mut net_shift = 0usize;
    for i in 0..x.len() {
        let sigma = gadget_permutation(x[i], y[i]);
        let shift = sigma[0]; // σ(0) identifies the cyclic shift
        net_shift = (net_shift + shift) % 3;
        println!(
            "  gadget {i}: x={} y={} σ={sigma:?} (running shift {net_shift})",
            u8::from(x[i]),
            u8::from(y[i])
        );
    }

    // Chaining the gadgets and closing the loop (Figure 6/12): the graph
    // is a Hamiltonian cycle iff the net shift is nonzero — iff the inner
    // product is nonzero mod 3 (Lemma C.3).
    let inst = ipmod3_to_ham(&x, &y);
    let sub = inst.full_subgraph();
    let ham = predicates::is_hamiltonian_cycle(inst.graph(), &sub);
    let cycles = predicates::cycle_count_two_regular(inst.graph(), &sub).unwrap();
    println!(
        "\nG: {} nodes, {} edges; net shift {} ⇒ {} cycle(s) ⇒ Hamiltonian = {ham}",
        inst.graph().node_count(),
        inst.graph().edge_count(),
        net_shift,
        cycles
    );
    println!(
        "Carol's edges form a perfect matching: {}",
        inst.is_perfect_matching(inst.carol_edges())
    );
    println!(
        "David's edges form a perfect matching: {}",
        inst.is_perfect_matching(inst.david_edges())
    );

    // The gap version (Figure 7): Hamming distance δ ⇒ δ+1 cycles.
    println!("\nGap-Eq → Ham (Figure 7): planting mismatches");
    let base = vec![false; 24];
    for delta in [0usize, 1, 3, 6] {
        let mut other = base.clone();
        for j in 0..delta {
            other[j * 4] = true;
        }
        let gap = gapeq_to_ham(&base, &other);
        let c = predicates::cycle_count_two_regular(gap.graph(), &gap.full_subgraph()).unwrap();
        println!("  Δ = {delta}: {} cycle(s), Hamiltonian = {}", c, c == 1);
    }
    println!("\nSo any (quantum) protocol verifying Hamiltonicity of G computes IPmod3 /");
    println!("Gap-Eq — and those are Ω(n)-hard even in the Server model (Theorem 6.1).");
}
