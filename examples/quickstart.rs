//! Quickstart: build the paper's hard network, run a real distributed
//! MST on it, and see the Theorem 3.8 story in numbers.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use qdc::algos::mst::{mst_approx_sweep, mst_exact};
use qdc::congest::CongestConfig;
use qdc::core::{bounds, theorems};
use qdc::graph::generate;
use qdc::simthm::SimulationNetwork;

fn main() {
    // 1. The Theorem 3.5 network: Γ paths of length L plus log L highways.
    let net = SimulationNetwork::build(14, 17);
    let n = net.graph().node_count();
    let diam = qdc::graph::algorithms::diameter(net.graph()).expect("connected") as usize;
    println!(
        "network: {} nodes, diameter {} (≈ log L), horizon {}",
        n,
        diam,
        net.horizon()
    );

    // 2. Embed a Server-model instance: two perfect matchings on the
    //    track labels form the subnetwork M (a Hamiltonian cycle here).
    let (carol, david) = generate::hamiltonian_matching_pair(net.track_count());
    let m = net.embed_matchings(&carol, &david);
    println!(
        "embedded M: {} edges, Hamiltonian = {}",
        m.edge_count(),
        qdc::graph::predicates::is_hamiltonian_cycle(net.graph(), &m)
    );

    // 3. The §9.2 weight gadget: M-edges weight 1, everything else W.
    let alpha = 2.0;
    let w = 4 * n as u64; // W > αn, the separating regime
    let weights = theorems::weight_gadget(net.graph(), &m, w);
    println!("weights: aspect ratio W = {}", weights.aspect_ratio());

    // 4. Run both distributed MST algorithms and compare with theory.
    let cfg = CongestConfig::classical(64);
    let exact = mst_exact(net.graph(), cfg, &weights);
    let approx = mst_approx_sweep(net.graph(), cfg, &weights, alpha);
    println!(
        "exact MST   (Kutten–Peleg style): weight {}, {} rounds",
        exact.total_weight, exact.ledger.rounds
    );
    println!(
        "approx MST  (Elkin-style sweep):  weight {}, {} rounds",
        approx.total_weight, approx.ledger.rounds
    );

    // 5. The lower bound no algorithm — classical or quantum — can beat.
    let lower = bounds::optimization_lower_bound(n, 64, w as f64, alpha);
    println!(
        "Theorem 3.8: any {}-approximate quantum MST needs Ω({lower:.2}) rounds here;",
        alpha
    );
    println!("the exact algorithm's √n-ish round count is optimal up to polylog factors —");
    println!("quantum communication cannot substantially speed this up.");
}
