//! Example 1.1: the one place quantum communication *does* win — and why
//! that forced the paper to invent the Server model.
//!
//! ```sh
//! cargo run --release --example quantum_advantage
//! ```

use qdc::algos::disjointness::{
    classical_disjointness, classical_rounds, quantum_disjointness, quantum_rounds,
};
use qdc::congest::CongestConfig;
use qdc::graph::generate;
use qdc::quantum::grover::{disjointness_queries, success_probability};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(42);

    // Grover itself, exactly simulated: quadratically fewer queries.
    println!("Grover search (state-vector simulation):");
    for &bits in &[8usize, 12, 16] {
        let n = 1usize << bits;
        let k = qdc::quantum::grover::optimal_iterations(n, 1);
        let p = success_probability(n, 1, k);
        println!("  {n:>6} items: {k:>4} queries, success probability {p:.4}");
    }

    // The distributed protocol: two nodes at distance D on a path.
    let d = 12;
    let bandwidth = 16;
    let b = 1024;
    let x = generate::random_bits(b, 1);
    let mut y: Vec<bool> = x.iter().map(|&v| !v).collect();
    y[500] = x[500]; // plant one intersection

    let classical = classical_disjointness(&x, &y, d, CongestConfig::classical(bandwidth));
    let quantum = quantum_disjointness(&x, &y, d, CongestConfig::quantum(bandwidth), &mut rng);
    println!("\ndistributed Disjointness, b = {b}, D = {d}, B = {bandwidth}:");
    println!(
        "  classical streaming: answer disjoint={}, {} rounds ({} bits)",
        classical.disjoint, classical.ledger.rounds, classical.ledger.bits
    );
    println!(
        "  quantum (Grover):    answer disjoint={}, {} rounds ({} qubits, {} queries)",
        quantum.disjoint,
        quantum.ledger.rounds,
        quantum.ledger.bits,
        disjointness_queries(b)
    );

    // Where the curves cross.
    println!("\nclosed-form crossover (D = {d}, B = {bandwidth}):");
    for k in [14usize, 16, 18, 20, 22] {
        let b = 1usize << k;
        let c = classical_rounds(b, d, bandwidth);
        let q = quantum_rounds(b, d);
        println!(
            "  b = 2^{k:<2}: classical {c:>8}, quantum {q:>8}  → {}",
            if q < c {
                "QUANTUM WINS"
            } else {
                "classical wins"
            }
        );
    }

    println!("\nThis is why the paper cannot reduce from Disjointness like Das Sarma et al.:");
    println!("quantumly, Disj is easy (O(√b) communication). The paper's fix: prove Ω(n)");
    println!("bounds for IPmod3 and Gap-Eq in the *Server model* via nonlocal games, where");
    println!("no Grover-style shortcut exists — then reduce those to graph verification.");
}
