//! # qdc — Can Quantum Communication Speed Up Distributed Computation?
//!
//! An executable reproduction of Elkin, Klauck, Nanongkai and Pandurangan
//! (PODC 2014, arXiv:1207.5211): the Server model, the Quantum Simulation
//! Theorem, the gadget reductions, and the Ω̃(√n) / Ω̃(min(W/α, √n))
//! quantum distributed lower bounds — together with every substrate they
//! stand on (a CONGEST simulator, a state-vector quantum simulator,
//! communication-complexity models, and the classical upper-bound
//! algorithms the lower bounds are matched against).
//!
//! The workspace is organized as one crate per subsystem, re-exported
//! here:
//!
//! * [`graph`] — graph substrate, verification predicates, sequential
//!   reference algorithms;
//! * [`quantum`] — state-vector simulation, teleportation, Grover,
//!   nonlocal games and the Lemma 3.2 abort strategy;
//! * [`congest`] — the CONGEST(B) simulator with bit-exact accounting;
//! * [`cc`] — two-party and Server communication models, problems,
//!   fooling sets, GV codes, the §B.3 spectral bounds;
//! * [`gadgets`] — the Section 7 reductions (`IPmod3 → Ham`,
//!   `Gap-Eq → Ham`, `Ham → ST`);
//! * [`simthm`] — the Section 8 network and the Theorem 3.5 audit;
//! * [`algos`] — distributed upper bounds (BFS, leader election, MST,
//!   verification, SSSP, Disjointness);
//! * [`core`] — bound formulas, theorem parameters, the Figure 1
//!   pipeline;
//! * [`harness`] — the experiment-campaign runner: declarative grids,
//!   deterministic parallel sharding, JSONL records and
//!   order-independent aggregates;
//! * [`service`] — the resident campaign service: a bounded job queue
//!   with per-client quotas, crash-safe journaled execution, and
//!   streaming JSONL endpoints over a hand-rolled HTTP/1.1 layer
//!   (`campaign serve` is the CLI front end).
//!
//! # Quickstart
//!
//! ```
//! use qdc::core::bounds;
//! use qdc::simthm::SimulationNetwork;
//!
//! // The hard-instance network of Theorem 3.5 (scaled down)…
//! let net = SimulationNetwork::build(8, 17);
//! assert!(net.graph().node_count() > 8 * 17);
//!
//! // …and the lower bound any quantum algorithm on it must respect.
//! let bound = bounds::verification_lower_bound(net.graph().node_count(), 16);
//! assert!(bound > 1.0);
//! ```

pub use qdc_algos as algos;
pub use qdc_cc as cc;
pub use qdc_congest as congest;
pub use qdc_core as core;
pub use qdc_gadgets as gadgets;
pub use qdc_graph as graph;
pub use qdc_harness as harness;
pub use qdc_quantum as quantum;
pub use qdc_service as service;
pub use qdc_simthm as simthm;
