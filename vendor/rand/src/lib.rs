//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this workspace has no access to crates.io,
//! so the external `rand` dependency is replaced by this in-tree crate
//! exposing exactly the API surface the workspace uses: the
//! [`RngCore`]/[`Rng`]/[`SeedableRng`] traits, `gen`, `gen_range`,
//! `gen_bool`, and [`seq::SliceRandom::shuffle`]. Algorithms follow the
//! upstream crate (Lemire-style range rejection, 53-bit float
//! conversion, SplitMix64 seeding, Fisher–Yates shuffling) so the
//! statistical properties the test suite relies on are preserved.
//! Streams are deterministic per seed but are not bit-compatible with
//! crates.io `rand` 0.8.

/// The low-level RNG interface: a source of raw random words.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// The user-facing RNG interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0,1]");
        // 53-bit comparison, like upstream's Bernoulli via f64.
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Raw seed type (a fixed-size byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the RNG from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the RNG from a `u64` by expanding it with SplitMix64,
    /// matching upstream's default implementation.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 (Steele, Lea & Flood), as in rand 0.8.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

pub mod distributions {
    //! Standard distributions for `Rng::gen`.

    use super::RngCore;

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draws one sample.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" distribution: uniform over all values for integers
    /// and `bool`, uniform in `[0, 1)` for floats.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Standard;

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u32() & 1 == 1
        }
    }

    impl Distribution<u8> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u8 {
            rng.next_u32() as u8
        }
    }

    impl Distribution<u32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
            rng.next_u32()
        }
    }

    impl Distribution<u64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }

    impl Distribution<usize> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
            rng.next_u64() as usize
        }
    }

    impl Distribution<i64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> i64 {
            rng.next_u64() as i64
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 uniform mantissa bits in [0, 1), as upstream does.
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    pub mod uniform {
        //! Uniform sampling from ranges, the engine behind
        //! `Rng::gen_range`.

        use super::super::{Rng, RngCore};
        use std::ops::{Range, RangeInclusive};

        /// Range types `Rng::gen_range` accepts.
        pub trait SampleRange<T> {
            /// Samples one value uniformly from the range.
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        /// Uniform `u64` in `[0, bound)` by widening-multiply rejection
        /// (Lemire's method — unbiased).
        fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            loop {
                let x = rng.next_u64();
                let m = (x as u128) * (bound as u128);
                let lo = m as u64;
                if lo >= bound || lo >= (u64::MAX - bound + 1) % bound {
                    return (m >> 64) as u64;
                }
            }
        }

        macro_rules! impl_int_ranges {
            ($($t:ty),*) => {$(
                impl SampleRange<$t> for Range<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "empty range in gen_range");
                        let span = (self.end as u64).wrapping_sub(self.start as u64);
                        // Wrapping add of the truncated offset is exact
                        // modular arithmetic, so narrow types stay correct.
                        self.start.wrapping_add(uniform_below(rng, span) as $t)
                    }
                }
                impl SampleRange<$t> for RangeInclusive<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        let (lo, hi) = (*self.start(), *self.end());
                        assert!(lo <= hi, "empty range in gen_range");
                        let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                        if span == 0 {
                            // Full-width inclusive range.
                            return rng.next_u64() as $t;
                        }
                        lo.wrapping_add(uniform_below(rng, span) as $t)
                    }
                }
            )*};
        }

        impl_int_ranges!(u8, u16, u32, u64, usize, i32, i64, isize);

        impl SampleRange<f64> for Range<f64> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
                assert!(self.start < self.end, "empty range in gen_range");
                self.start + rng.gen::<f64>() * (self.end - self.start)
            }
        }

        impl SampleRange<f64> for RangeInclusive<f64> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                lo + rng.gen::<f64>() * (hi - lo)
            }
        }
    }
}

pub mod seq {
    //! Sequence-related random operations.

    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

pub mod rngs {
    //! Small self-contained RNGs.

    use super::{RngCore, SeedableRng};

    /// Xoshiro256++ — a fast, high-quality small RNG, used where the
    /// workspace asks for "a small rng" without naming ChaCha.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let out = (self.s[0].wrapping_add(self.s[3]))
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(b);
            }
            // Avoid the all-zero state, which is a fixed point.
            if s.iter().all(|&w| w == 0) {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            SmallRng { s }
        }
    }
}

pub mod prelude {
    //! One-stop import mirroring `rand::prelude`.
    pub use super::distributions::Distribution;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::rngs::SmallRng;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = r.gen_range(10usize..20);
            assert!((10..20).contains(&x));
            let y = r.gen_range(1u64..=6);
            assert!((1..=6).contains(&y));
            let f = r.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_p() {
        let mut r = SmallRng::seed_from_u64(4);
        let hits = (0..20_000).filter(|_| r.gen_bool(0.25)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate={rate}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SmallRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements almost surely move");
    }

    #[test]
    fn f64_samples_lie_in_unit_interval() {
        let mut r = SmallRng::seed_from_u64(6);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
