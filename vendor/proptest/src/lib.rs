//! Offline stand-in for the `proptest` crate.
//!
//! Provides the subset the workspace's property tests use: the
//! [`proptest!`] item macro, [`prop_assert!`]/[`prop_assert_eq!`]/
//! [`prop_assume!`], `any::<T>()`, range strategies, tuple strategies,
//! and `prop::collection::{vec, btree_set}`. Unlike upstream there is no
//! shrinking: a failing case reports the deterministic per-case seed so
//! it can be replayed exactly. Case counts honor `ProptestConfig` and
//! can be scaled globally with the `PROPTEST_CASES` environment
//! variable.

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategies!(u8, u16, u32, u64, usize, i32, i64, isize, f64);

    macro_rules! impl_tuple_strategies {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategies! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

pub mod arbitrary {
    //! `any::<T>()` — the type's canonical full-domain strategy.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Types with a canonical "anything goes" strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_via_gen {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.gen()
                }
            }
        )*};
    }

    impl_arbitrary_via_gen!(bool, u8, u32, u64, usize, f64);

    /// The strategy returned by [`any`].
    #[derive(Clone, Copy, Debug)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    /// An inclusive size band for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.lo..=self.hi)
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from a band.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A vector whose length lies in `size` and whose elements come from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy for `BTreeSet<S::Value>`.
    #[derive(Clone, Debug)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.sample(rng);
            let mut set = BTreeSet::new();
            // Duplicates shrink the set, so allow generous retries before
            // settling for whatever distinct values were found.
            for _ in 0..(target * 32 + 64) {
                if set.len() >= target {
                    break;
                }
                set.insert(self.element.sample(rng));
            }
            set
        }
    }

    /// A set whose size aims for `size` (duplicates permitting) with
    /// elements from `element`.
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod test_runner {
    //! Case execution: config, per-case RNG derivation, failure
    //! reporting.

    use rand::SeedableRng;

    /// The RNG handed to strategies, one stream per case.
    pub type TestRng = rand_chacha::ChaCha8Rng;

    /// Mirror of `proptest::test_runner::Config` (the fields used here).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Why a single case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is retried.
        Reject,
        /// A `prop_assert!` failed with this message.
        Fail(String),
    }

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
    }

    /// Runs cases with deterministic, replayable per-case seeds.
    pub struct TestRunner {
        config: ProptestConfig,
        name: &'static str,
    }

    impl TestRunner {
        /// A runner for the named test.
        pub fn new(config: ProptestConfig, name: &'static str) -> Self {
            TestRunner { config, name }
        }

        fn cases(&self) -> u32 {
            match std::env::var("PROPTEST_CASES") {
                Ok(v) => v.parse().unwrap_or(self.config.cases),
                Err(_) => self.config.cases,
            }
        }

        /// Runs `f` until `cases` successes; panics on the first failure
        /// with the case's seed for replay.
        pub fn run<F>(&mut self, mut f: F)
        where
            F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
        {
            let cases = self.cases();
            // FNV-1a over the test name decorrelates sibling tests.
            let mut name_hash = 0xcbf2_9ce4_8422_2325u64;
            for b in self.name.bytes() {
                name_hash ^= b as u64;
                name_hash = name_hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
            let mut successes = 0u32;
            let mut rejects = 0u64;
            let max_rejects = cases as u64 * 64 + 1024;
            let mut attempt = 0u64;
            while successes < cases {
                let seed = name_hash.wrapping_add(attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15));
                let mut rng = TestRng::seed_from_u64(seed);
                attempt += 1;
                match f(&mut rng) {
                    Ok(()) => successes += 1,
                    Err(TestCaseError::Reject) => {
                        rejects += 1;
                        assert!(
                            rejects <= max_rejects,
                            "proptest '{}': too many prop_assume! rejections ({rejects})",
                            self.name
                        );
                    }
                    Err(TestCaseError::Fail(msg)) => panic!(
                        "proptest '{}' failed at case {} (seed {seed:#x}):\n{msg}",
                        self.name,
                        successes + 1
                    ),
                }
            }
        }
    }
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running the body over sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let mut runner = $crate::test_runner::TestRunner::new($cfg, stringify!($name));
            runner.run(|__proptest_rng| {
                $(let $pat = $crate::strategy::Strategy::sample(&($strat), __proptest_rng);)+
                $body
                Ok(())
            });
        }
    )*};
}

/// Asserts inside a proptest body; failure reports the case seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if !(*lhs == *rhs) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($lhs),
                stringify!($rhs),
                lhs,
                rhs
            )));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if !(*lhs == *rhs) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                lhs,
                rhs
            )));
        }
    }};
}

/// Asserts inequality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if *lhs == *rhs {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($lhs),
                stringify!($rhs),
                lhs
            )));
        }
    }};
}

/// Skips the current case (retried with fresh inputs) unless `cond`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    pub mod prop {
        //! Mirror of the upstream `prop` module tree.
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in 1u64..=6, f in 0.25f64..0.75) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((1..=6).contains(&y));
            prop_assert!((0.25..0.75).contains(&f), "f={f}");
        }

        #[test]
        fn vec_strategy_honors_size(v in prop::collection::vec(any::<bool>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn tuples_and_sets_compose(
            pair in (any::<u64>(), 1usize..=64),
            s in prop::collection::btree_set(0usize..32, 1..5),
        ) {
            prop_assert!(pair.1 >= 1 && pair.1 <= 64);
            prop_assert!(!s.is_empty() && s.len() < 5);
            prop_assert!(s.iter().all(|&e| e < 32));
        }

        #[test]
        fn assume_rejects_and_retries(n in 0usize..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    #[should_panic(expected = "proptest 'always_fails' failed")]
    fn failures_panic_with_seed() {
        // No #[test] meta: nested functions cannot be harness tests.
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn always_fails(x in 0usize..4) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        always_fails();
    }
}
