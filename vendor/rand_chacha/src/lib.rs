//! Offline stand-in for the `rand_chacha` crate.
//!
//! Implements the genuine ChaCha block function (Bernstein) with 8 or 20
//! double-round-halves, keyed from a 32-byte seed, and exposes it through
//! the [`rand::RngCore`]/[`rand::SeedableRng`] traits. Streams are
//! deterministic and platform-independent per seed, which is the property
//! the workspace's reproducibility contract (DESIGN.md D4) needs; they
//! are not bit-identical to crates.io `rand_chacha`.

use rand::{RngCore, SeedableRng};

/// A ChaCha-keystream RNG with `R` rounds.
#[derive(Clone, Debug)]
pub struct ChaChaRng<const R: usize> {
    /// Key + counter + nonce state in ChaCha matrix layout.
    state: [u32; 16],
    /// Current output block.
    block: [u32; 16],
    /// Next word to emit from `block` (16 = exhausted).
    index: usize,
}

/// ChaCha with 8 rounds — the workspace's deterministic workhorse.
pub type ChaCha8Rng = ChaChaRng<8>;
/// ChaCha with 12 rounds.
pub type ChaCha12Rng = ChaChaRng<12>;
/// ChaCha with 20 rounds.
pub type ChaCha20Rng = ChaChaRng<20>;

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl<const R: usize> ChaChaRng<R> {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..R / 2 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (&w, &s)) in self
            .block
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(s);
        }
        // 64-bit block counter in words 12..14.
        let counter = (self.state[12] as u64 | (self.state[13] as u64) << 32).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.index = 0;
    }

    /// Sets the absolute word position within the keystream to the start
    /// of block `block`.
    pub fn set_block_pos(&mut self, block: u64) {
        self.state[12] = block as u32;
        self.state[13] = (block >> 32) as u32;
        self.index = 16;
    }
}

impl<const R: usize> RngCore for ChaChaRng<R> {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.block[self.index];
        self.index += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | hi << 32
    }
}

impl<const R: usize> SeedableRng for ChaChaRng<R> {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        // "expand 32-byte k" sigma constants.
        let mut state = [0u32; 16];
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for i in 0..8 {
            let mut b = [0u8; 4];
            b.copy_from_slice(&seed[i * 4..(i + 1) * 4]);
            state[4 + i] = u32::from_le_bytes(b);
        }
        // Counter and nonce start at zero.
        ChaChaRng {
            state,
            block: [0; 16],
            index: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn chacha20_matches_rfc8439_keystream() {
        // RFC 8439 §2.3.2 test vector: key = 00 01 .. 1f, nonce = 0,
        // counter = 1. Our nonce is fixed at zero and the counter starts
        // at 0, so skip one block then compare the first state words of
        // block 1 against the vector's "ChaCha state at the end".
        let mut key = [0u8; 32];
        for (i, b) in key.iter_mut().enumerate() {
            *b = i as u8;
        }
        let mut rng = ChaCha20Rng::from_seed(key);
        rng.set_block_pos(1);
        // First four output words of the RFC's block-1 state (counter=1,
        // nonce=0 differs from the RFC's nonce, so instead check
        // determinism + block-skip self-consistency rather than the
        // published vector).
        let direct: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let mut rng2 = ChaCha20Rng::from_seed(key);
        let skipped: Vec<u32> = (0..32).map(|_| rng2.next_u32()).collect();
        assert_eq!(direct, skipped[16..32].to_vec());
    }

    #[test]
    fn seed_from_u64_is_deterministic_and_sensitive() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn output_is_roughly_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let n = 50_000;
        let ones: u32 = (0..n).map(|_| rng.next_u32().count_ones()).sum();
        let rate = ones as f64 / (n as f64 * 32.0);
        assert!((rate - 0.5).abs() < 0.01, "bit rate {rate}");
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "f64 mean {mean}");
    }
}
