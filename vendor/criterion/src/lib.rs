//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API surface the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `Bencher::iter`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros — over a simple
//! wall-clock harness: per sample, the closure is repeated enough times
//! to dominate timer noise, and the report lists min / median / max
//! per-iteration times. Tuning knobs: `QDC_BENCH_SAMPLE_MS` (target
//! milliseconds per sample, default 5) and `QDC_BENCH_SAMPLES`
//! (overrides every `sample_size`).

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Formats a per-iteration duration with criterion-style units.
fn fmt_time(nanos: f64) -> String {
    if nanos < 1_000.0 {
        format!("{nanos:.2} ns")
    } else if nanos < 1_000_000.0 {
        format!("{:.3} µs", nanos / 1_000.0)
    } else if nanos < 1_000_000_000.0 {
        format!("{:.3} ms", nanos / 1_000_000.0)
    } else {
        format!("{:.3} s", nanos / 1_000_000_000.0)
    }
}

/// Identifies one benchmark within a group: `function_name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Runs the timed closure and collects samples.
pub struct Bencher {
    samples: usize,
    /// (min, median, max) per-iteration nanoseconds of the last `iter`.
    result: Option<(f64, f64, f64)>,
}

impl Bencher {
    /// Times `f`, choosing an iteration count large enough for stable
    /// per-iteration estimates.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm up and estimate a single iteration.
        let mut est = Duration::ZERO;
        let mut warm = 0u32;
        let warm_start = Instant::now();
        while warm < 3 || (est.is_zero() && warm < 1_000) {
            let t = Instant::now();
            black_box(f());
            est = t.elapsed();
            warm += 1;
            if warm_start.elapsed() > Duration::from_millis(200) {
                break;
            }
        }
        let target = Duration::from_millis(env_usize("QDC_BENCH_SAMPLE_MS", 5) as u64);
        let iters = if est.is_zero() {
            10_000
        } else {
            (target.as_nanos() / est.as_nanos().max(1)).clamp(1, 100_000_000) as u64
        };
        let mut per_iter: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            per_iter.push(t.elapsed().as_nanos() as f64 / iters as f64);
        }
        per_iter.sort_by(|a, b| a.total_cmp(b));
        let min = per_iter[0];
        let median = per_iter[per_iter.len() / 2];
        let max = per_iter[per_iter.len() - 1];
        self.result = Some((min, median, max));
    }
}

fn run_one(label: &str, samples: usize, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        samples: env_usize("QDC_BENCH_SAMPLES", samples),
        result: None,
    };
    f(&mut b);
    match b.result {
        Some((min, median, max)) => println!(
            "{label:<44} time: [{} {} {}]",
            fmt_time(min),
            fmt_time(median),
            fmt_time(max)
        ),
        None => println!("{label:<44} (no measurement: Bencher::iter never called)"),
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f` under `group/id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.id);
        run_one(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Benchmarks `f` under `group/id`.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_size, f);
        self
    }

    /// Ends the group (printing is eager, so this is bookkeeping only).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Mirror of upstream's CLI configuration hook; arguments from
    /// `cargo bench -- …` are ignored by this harness.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            _criterion: self,
        }
    }

    /// Benchmarks a standalone function.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(&id.to_string(), 20, f);
        self
    }
}

/// Bundles benchmark functions into a single callable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` invoking each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_smoke() {
        std::env::set_var("QDC_BENCH_SAMPLE_MS", "1");
        let mut c = Criterion::default().configure_from_args();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3);
        g.bench_with_input(BenchmarkId::new("sum", 64), &64u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        g.finish();
        c.bench_function("top_level", |b| b.iter(|| black_box(3 * 3)));
    }

    #[test]
    fn time_formatting_scales_units() {
        assert!(fmt_time(12.0).ends_with("ns"));
        assert!(fmt_time(12_000.0).ends_with("µs"));
        assert!(fmt_time(12_000_000.0).ends_with("ms"));
        assert!(fmt_time(12_000_000_000.0).ends_with(" s"));
    }
}
